#include "tibsim/common/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/table.hpp"

namespace tibsim {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '~'};

double transform(double v, bool log) {
  if (!log) return v;
  TIB_REQUIRE_MSG(v > 0.0, "log-scale axes require positive values");
  return std::log10(v);
}
}  // namespace

std::string renderChart(const std::vector<Series>& series,
                        const ChartOptions& options) {
  TIB_REQUIRE(!series.empty());
  TIB_REQUIRE(options.width >= 10 && options.height >= 4);

  double xMin = std::numeric_limits<double>::infinity();
  double xMax = -xMin, yMin = xMin, yMax = -xMin;
  bool any = false;
  for (const auto& s : series) {
    TIB_REQUIRE(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], options.logX);
      const double ty = transform(s.y[i], options.logY);
      xMin = std::min(xMin, tx);
      xMax = std::max(xMax, tx);
      yMin = std::min(yMin, ty);
      yMax = std::max(yMax, ty);
      any = true;
    }
  }
  TIB_REQUIRE_MSG(any, "cannot chart empty series");
  if (xMax == xMin) xMax = xMin + 1.0;
  if (yMax == yMin) yMax = yMin + 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(options.height),
      std::string(static_cast<std::size_t>(options.width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % sizeof(kMarkers)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], options.logX);
      const double ty = transform(s.y[i], options.logY);
      const int col = static_cast<int>(
          std::lround((tx - xMin) / (xMax - xMin) * (options.width - 1)));
      const int row = static_cast<int>(
          std::lround((ty - yMin) / (yMax - yMin) * (options.height - 1)));
      grid[static_cast<std::size_t>(options.height - 1 - row)]
          [static_cast<std::size_t>(col)] = mark;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  const std::string yLo = fmt(options.logY ? std::pow(10, yMin) : yMin, 3);
  const std::string yHi = fmt(options.logY ? std::pow(10, yMax) : yMax, 3);
  const std::size_t margin = std::max(yLo.size(), yHi.size());

  for (int r = 0; r < options.height; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = std::string(margin - yHi.size(), ' ') + yHi;
    if (r == options.height - 1)
      label = std::string(margin - yLo.size(), ' ') + yLo;
    out << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+'
      << std::string(static_cast<std::size_t>(options.width), '-') << '\n';
  const std::string xLo = fmt(options.logX ? std::pow(10, xMin) : xMin, 2);
  const std::string xHi = fmt(options.logX ? std::pow(10, xMax) : xMax, 2);
  out << std::string(margin + 2, ' ') << xLo
      << std::string(
             std::max<int>(1, options.width - static_cast<int>(xLo.size()) -
                                  static_cast<int>(xHi.size())),
             ' ')
      << xHi << '\n';
  if (!options.xLabel.empty() || !options.yLabel.empty())
    out << "  x: " << options.xLabel << "   y: " << options.yLabel << '\n';
  for (std::size_t si = 0; si < series.size(); ++si)
    out << "  " << kMarkers[si % sizeof(kMarkers)] << " = " << series[si].name
        << '\n';
  return out.str();
}

std::string renderBars(const std::vector<std::pair<std::string, double>>& bars,
                       const std::string& title, int width) {
  TIB_REQUIRE(!bars.empty());
  double maxVal = 0.0;
  std::size_t maxLabel = 0;
  for (const auto& [label, value] : bars) {
    maxVal = std::max(maxVal, value);
    maxLabel = std::max(maxLabel, label.size());
  }
  if (maxVal <= 0.0) maxVal = 1.0;

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  for (const auto& [label, value] : bars) {
    const int len = static_cast<int>(
        std::lround(value / maxVal * static_cast<double>(width)));
    out << label << std::string(maxLabel - label.size(), ' ') << " | "
        << std::string(static_cast<std::size_t>(std::max(0, len)), '#') << ' '
        << fmt(value, 3) << '\n';
  }
  return out.str();
}

}  // namespace tibsim
