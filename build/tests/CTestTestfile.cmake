# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_arch_power[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_trend[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_governor[1]_include.cmake")
include("/root/repo/build/tests/test_trace_imb[1]_include.cmake")
include("/root/repo/build/tests/test_eee_slurm[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
