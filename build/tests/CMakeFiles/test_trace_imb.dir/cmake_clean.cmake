file(REMOVE_RECURSE
  "CMakeFiles/test_trace_imb.dir/test_trace_imb.cpp.o"
  "CMakeFiles/test_trace_imb.dir/test_trace_imb.cpp.o.d"
  "test_trace_imb"
  "test_trace_imb.pdb"
  "test_trace_imb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_imb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
