# Empty compiler generated dependencies file for test_trace_imb.
# This may be replaced when dependencies are built.
