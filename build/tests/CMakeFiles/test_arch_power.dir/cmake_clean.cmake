file(REMOVE_RECURSE
  "CMakeFiles/test_arch_power.dir/test_arch_power.cpp.o"
  "CMakeFiles/test_arch_power.dir/test_arch_power.cpp.o.d"
  "test_arch_power"
  "test_arch_power.pdb"
  "test_arch_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
