# Empty dependencies file for test_arch_power.
# This may be replaced when dependencies are built.
