file(REMOVE_RECURSE
  "CMakeFiles/test_eee_slurm.dir/test_eee_slurm.cpp.o"
  "CMakeFiles/test_eee_slurm.dir/test_eee_slurm.cpp.o.d"
  "test_eee_slurm"
  "test_eee_slurm.pdb"
  "test_eee_slurm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eee_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
