# Empty dependencies file for fig01_top500_transitions.
# This may be replaced when dependencies are built.
