file(REMOVE_RECURSE
  "CMakeFiles/fig01_top500_transitions.dir/fig01_top500_transitions.cpp.o"
  "CMakeFiles/fig01_top500_transitions.dir/fig01_top500_transitions.cpp.o.d"
  "fig01_top500_transitions"
  "fig01_top500_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_top500_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
