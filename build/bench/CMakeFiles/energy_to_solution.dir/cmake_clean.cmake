file(REMOVE_RECURSE
  "CMakeFiles/energy_to_solution.dir/energy_to_solution.cpp.o"
  "CMakeFiles/energy_to_solution.dir/energy_to_solution.cpp.o.d"
  "energy_to_solution"
  "energy_to_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_to_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
