# Empty compiler generated dependencies file for energy_to_solution.
# This may be replaced when dependencies are built.
