file(REMOVE_RECURSE
  "CMakeFiles/imb_suite.dir/imb_suite.cpp.o"
  "CMakeFiles/imb_suite.dir/imb_suite.cpp.o.d"
  "imb_suite"
  "imb_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imb_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
