# Empty compiler generated dependencies file for imb_suite.
# This may be replaced when dependencies are built.
