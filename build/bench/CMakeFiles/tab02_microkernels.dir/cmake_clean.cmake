file(REMOVE_RECURSE
  "CMakeFiles/tab02_microkernels.dir/tab02_microkernels.cpp.o"
  "CMakeFiles/tab02_microkernels.dir/tab02_microkernels.cpp.o.d"
  "tab02_microkernels"
  "tab02_microkernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_microkernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
