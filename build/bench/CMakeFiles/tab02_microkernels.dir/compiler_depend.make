# Empty compiler generated dependencies file for tab02_microkernels.
# This may be replaced when dependencies are built.
