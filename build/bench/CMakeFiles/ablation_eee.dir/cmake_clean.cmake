file(REMOVE_RECURSE
  "CMakeFiles/ablation_eee.dir/ablation_eee.cpp.o"
  "CMakeFiles/ablation_eee.dir/ablation_eee.cpp.o.d"
  "ablation_eee"
  "ablation_eee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
