# Empty dependencies file for ablation_eee.
# This may be replaced when dependencies are built.
