file(REMOVE_RECURSE
  "CMakeFiles/fig04_multicore.dir/fig04_multicore.cpp.o"
  "CMakeFiles/fig04_multicore.dir/fig04_multicore.cpp.o.d"
  "fig04_multicore"
  "fig04_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
