# Empty dependencies file for fig04_multicore.
# This may be replaced when dependencies are built.
