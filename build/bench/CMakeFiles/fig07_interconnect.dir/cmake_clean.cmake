file(REMOVE_RECURSE
  "CMakeFiles/fig07_interconnect.dir/fig07_interconnect.cpp.o"
  "CMakeFiles/fig07_interconnect.dir/fig07_interconnect.cpp.o.d"
  "fig07_interconnect"
  "fig07_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
