# Empty dependencies file for fig07_interconnect.
# This may be replaced when dependencies are built.
