# Empty compiler generated dependencies file for fig08_software_stack.
# This may be replaced when dependencies are built.
