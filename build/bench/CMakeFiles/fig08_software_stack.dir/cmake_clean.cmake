file(REMOVE_RECURSE
  "CMakeFiles/fig08_software_stack.dir/fig08_software_stack.cpp.o"
  "CMakeFiles/fig08_software_stack.dir/fig08_software_stack.cpp.o.d"
  "fig08_software_stack"
  "fig08_software_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_software_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
