file(REMOVE_RECURSE
  "CMakeFiles/fig02_flops_trends.dir/fig02_flops_trends.cpp.o"
  "CMakeFiles/fig02_flops_trends.dir/fig02_flops_trends.cpp.o.d"
  "fig02_flops_trends"
  "fig02_flops_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_flops_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
