# Empty dependencies file for hpl_green500.
# This may be replaced when dependencies are built.
