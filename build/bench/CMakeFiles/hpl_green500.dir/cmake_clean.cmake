file(REMOVE_RECURSE
  "CMakeFiles/hpl_green500.dir/hpl_green500.cpp.o"
  "CMakeFiles/hpl_green500.dir/hpl_green500.cpp.o.d"
  "hpl_green500"
  "hpl_green500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpl_green500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
