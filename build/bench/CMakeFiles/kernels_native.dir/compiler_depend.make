# Empty compiler generated dependencies file for kernels_native.
# This may be replaced when dependencies are built.
