file(REMOVE_RECURSE
  "CMakeFiles/kernels_native.dir/kernels_native.cpp.o"
  "CMakeFiles/kernels_native.dir/kernels_native.cpp.o.d"
  "kernels_native"
  "kernels_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
