file(REMOVE_RECURSE
  "CMakeFiles/fig03_singlecore.dir/fig03_singlecore.cpp.o"
  "CMakeFiles/fig03_singlecore.dir/fig03_singlecore.cpp.o.d"
  "fig03_singlecore"
  "fig03_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
