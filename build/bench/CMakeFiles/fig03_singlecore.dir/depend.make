# Empty dependencies file for fig03_singlecore.
# This may be replaced when dependencies are built.
