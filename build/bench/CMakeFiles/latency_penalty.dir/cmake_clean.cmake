file(REMOVE_RECURSE
  "CMakeFiles/latency_penalty.dir/latency_penalty.cpp.o"
  "CMakeFiles/latency_penalty.dir/latency_penalty.cpp.o.d"
  "latency_penalty"
  "latency_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
