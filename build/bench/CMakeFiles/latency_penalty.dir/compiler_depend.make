# Empty compiler generated dependencies file for latency_penalty.
# This may be replaced when dependencies are built.
