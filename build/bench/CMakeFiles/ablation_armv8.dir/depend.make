# Empty dependencies file for ablation_armv8.
# This may be replaced when dependencies are built.
