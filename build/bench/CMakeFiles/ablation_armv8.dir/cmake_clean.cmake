file(REMOVE_RECURSE
  "CMakeFiles/ablation_armv8.dir/ablation_armv8.cpp.o"
  "CMakeFiles/ablation_armv8.dir/ablation_armv8.cpp.o.d"
  "ablation_armv8"
  "ablation_armv8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_armv8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
