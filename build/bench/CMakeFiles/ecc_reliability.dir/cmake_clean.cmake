file(REMOVE_RECURSE
  "CMakeFiles/ecc_reliability.dir/ecc_reliability.cpp.o"
  "CMakeFiles/ecc_reliability.dir/ecc_reliability.cpp.o.d"
  "ecc_reliability"
  "ecc_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
