# Empty compiler generated dependencies file for ecc_reliability.
# This may be replaced when dependencies are built.
