file(REMOVE_RECURSE
  "CMakeFiles/tab04_bytes_per_flop.dir/tab04_bytes_per_flop.cpp.o"
  "CMakeFiles/tab04_bytes_per_flop.dir/tab04_bytes_per_flop.cpp.o.d"
  "tab04_bytes_per_flop"
  "tab04_bytes_per_flop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_bytes_per_flop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
