# Empty dependencies file for tab04_bytes_per_flop.
# This may be replaced when dependencies are built.
