file(REMOVE_RECURSE
  "CMakeFiles/fig05_stream.dir/fig05_stream.cpp.o"
  "CMakeFiles/fig05_stream.dir/fig05_stream.cpp.o.d"
  "fig05_stream"
  "fig05_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
