file(REMOVE_RECURSE
  "CMakeFiles/batch_campaign.dir/batch_campaign.cpp.o"
  "CMakeFiles/batch_campaign.dir/batch_campaign.cpp.o.d"
  "batch_campaign"
  "batch_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
