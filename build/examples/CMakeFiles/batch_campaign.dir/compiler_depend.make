# Empty compiler generated dependencies file for batch_campaign.
# This may be replaced when dependencies are built.
