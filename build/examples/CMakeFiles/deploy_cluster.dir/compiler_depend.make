# Empty compiler generated dependencies file for deploy_cluster.
# This may be replaced when dependencies are built.
