file(REMOVE_RECURSE
  "CMakeFiles/deploy_cluster.dir/deploy_cluster.cpp.o"
  "CMakeFiles/deploy_cluster.dir/deploy_cluster.cpp.o.d"
  "deploy_cluster"
  "deploy_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
