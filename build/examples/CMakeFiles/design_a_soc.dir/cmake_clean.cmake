file(REMOVE_RECURSE
  "CMakeFiles/design_a_soc.dir/design_a_soc.cpp.o"
  "CMakeFiles/design_a_soc.dir/design_a_soc.cpp.o.d"
  "design_a_soc"
  "design_a_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_a_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
