# Empty dependencies file for design_a_soc.
# This may be replaced when dependencies are built.
