file(REMOVE_RECURSE
  "CMakeFiles/interconnect_study.dir/interconnect_study.cpp.o"
  "CMakeFiles/interconnect_study.dir/interconnect_study.cpp.o.d"
  "interconnect_study"
  "interconnect_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
