file(REMOVE_RECURSE
  "libtibsim.a"
)
