
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/hpl.cpp" "src/CMakeFiles/tibsim.dir/apps/hpl.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/apps/hpl.cpp.o.d"
  "/root/repo/src/apps/hydro.cpp" "src/CMakeFiles/tibsim.dir/apps/hydro.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/apps/hydro.cpp.o.d"
  "/root/repo/src/apps/md.cpp" "src/CMakeFiles/tibsim.dir/apps/md.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/apps/md.cpp.o.d"
  "/root/repo/src/apps/pepc.cpp" "src/CMakeFiles/tibsim.dir/apps/pepc.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/apps/pepc.cpp.o.d"
  "/root/repo/src/apps/specfem.cpp" "src/CMakeFiles/tibsim.dir/apps/specfem.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/apps/specfem.cpp.o.d"
  "/root/repo/src/arch/platform.cpp" "src/CMakeFiles/tibsim.dir/arch/platform.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/arch/platform.cpp.o.d"
  "/root/repo/src/arch/registry.cpp" "src/CMakeFiles/tibsim.dir/arch/registry.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/arch/registry.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/tibsim.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/slurm.cpp" "src/CMakeFiles/tibsim.dir/cluster/slurm.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/cluster/slurm.cpp.o.d"
  "/root/repo/src/cluster/software_stack.cpp" "src/CMakeFiles/tibsim.dir/cluster/software_stack.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/cluster/software_stack.cpp.o.d"
  "/root/repo/src/common/chart.cpp" "src/CMakeFiles/tibsim.dir/common/chart.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/chart.cpp.o.d"
  "/root/repo/src/common/regression.cpp" "src/CMakeFiles/tibsim.dir/common/regression.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/regression.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/tibsim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/statistics.cpp" "src/CMakeFiles/tibsim.dir/common/statistics.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/statistics.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/tibsim.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/tibsim.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/experiments.cpp" "src/CMakeFiles/tibsim.dir/core/experiments.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/core/experiments.cpp.o.d"
  "/root/repo/src/kernels/kernels_complex.cpp" "src/CMakeFiles/tibsim.dir/kernels/kernels_complex.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/kernels/kernels_complex.cpp.o.d"
  "/root/repo/src/kernels/kernels_compute.cpp" "src/CMakeFiles/tibsim.dir/kernels/kernels_compute.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/kernels/kernels_compute.cpp.o.d"
  "/root/repo/src/kernels/kernels_mem.cpp" "src/CMakeFiles/tibsim.dir/kernels/kernels_mem.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/kernels/kernels_mem.cpp.o.d"
  "/root/repo/src/kernels/microkernel.cpp" "src/CMakeFiles/tibsim.dir/kernels/microkernel.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/kernels/microkernel.cpp.o.d"
  "/root/repo/src/kernels/stream.cpp" "src/CMakeFiles/tibsim.dir/kernels/stream.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/kernels/stream.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/tibsim.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/imb.cpp" "src/CMakeFiles/tibsim.dir/mpi/imb.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/mpi/imb.cpp.o.d"
  "/root/repo/src/mpi/simmpi.cpp" "src/CMakeFiles/tibsim.dir/mpi/simmpi.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/mpi/simmpi.cpp.o.d"
  "/root/repo/src/mpi/trace.cpp" "src/CMakeFiles/tibsim.dir/mpi/trace.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/mpi/trace.cpp.o.d"
  "/root/repo/src/net/eee.cpp" "src/CMakeFiles/tibsim.dir/net/eee.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/net/eee.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/tibsim.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/CMakeFiles/tibsim.dir/net/protocol.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/net/protocol.cpp.o.d"
  "/root/repo/src/perfmodel/execution_model.cpp" "src/CMakeFiles/tibsim.dir/perfmodel/execution_model.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/perfmodel/execution_model.cpp.o.d"
  "/root/repo/src/power/dvfs_governor.cpp" "src/CMakeFiles/tibsim.dir/power/dvfs_governor.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/power/dvfs_governor.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/tibsim.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/power/power_model.cpp.o.d"
  "/root/repo/src/reliability/dram_errors.cpp" "src/CMakeFiles/tibsim.dir/reliability/dram_errors.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/reliability/dram_errors.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/tibsim.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/trend/trend.cpp" "src/CMakeFiles/tibsim.dir/trend/trend.cpp.o" "gcc" "src/CMakeFiles/tibsim.dir/trend/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
