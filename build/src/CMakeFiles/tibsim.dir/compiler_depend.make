# Empty compiler generated dependencies file for tibsim.
# This may be replaced when dependencies are built.
