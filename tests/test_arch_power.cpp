// Tests for the platform registry (the paper's Table 1 data) and the power
// model / simulated Yokogawa meter.

#include <gtest/gtest.h>

#include <cmath>

#include "tibsim/arch/registry.hpp"
#include "tibsim/arch/table1.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/power/power_model.hpp"

namespace tibsim {
namespace {

using namespace units;
using arch::Platform;
using arch::PlatformRegistry;

// ---- Table 1 datasheet values -------------------------------------------

TEST(Registry, Tegra2MatchesTable1) {
  const Platform p = PlatformRegistry::tegra2();
  EXPECT_EQ(p.soc.cores, 2);
  EXPECT_DOUBLE_EQ(p.maxFrequencyHz(), ghz(1.0));
  EXPECT_DOUBLE_EQ(toGflops(p.peakFlops()), 2.0);
  EXPECT_DOUBLE_EQ(p.soc.memory.peakBandwidthBytesPerS, gbPerS(2.6));
  EXPECT_EQ(p.soc.memory.channels, 1);
  EXPECT_FALSE(p.soc.memory.eccCapable);
  EXPECT_EQ(p.nicAttachment, arch::NicAttachment::Pcie);
}

TEST(Registry, Tegra3MatchesTable1) {
  const Platform p = PlatformRegistry::tegra3();
  EXPECT_EQ(p.soc.cores, 4);
  EXPECT_DOUBLE_EQ(p.maxFrequencyHz(), ghz(1.3));
  EXPECT_NEAR(toGflops(p.peakFlops()), 5.2, 1e-9);
  EXPECT_DOUBLE_EQ(p.soc.memory.peakBandwidthBytesPerS, gbPerS(5.86));
}

TEST(Registry, Exynos5250MatchesTable1) {
  const Platform p = PlatformRegistry::exynos5250();
  EXPECT_EQ(p.soc.cores, 2);
  EXPECT_DOUBLE_EQ(p.maxFrequencyHz(), ghz(1.7));
  EXPECT_NEAR(toGflops(p.peakFlops()), 6.8, 1e-9);
  EXPECT_EQ(p.soc.memory.channels, 2);
  EXPECT_TRUE(p.soc.computeCapableGpu);
  EXPECT_EQ(p.nicAttachment, arch::NicAttachment::Usb3);
}

TEST(Registry, Corei7MatchesTable1) {
  const Platform p = PlatformRegistry::corei7_2760qm();
  EXPECT_EQ(p.soc.cores, 4);
  EXPECT_EQ(p.soc.threadsPerCore, 2);
  EXPECT_DOUBLE_EQ(p.maxFrequencyHz(), ghz(2.4));
  EXPECT_NEAR(toGflops(p.peakFlops()), 76.8, 1e-9);
  EXPECT_DOUBLE_EQ(p.soc.memory.peakBandwidthBytesPerS, gbPerS(25.6));
  EXPECT_EQ(p.soc.caches.size(), 3u);  // L1 + private L2 + shared L3
}

TEST(Registry, Armv8ProjectionDoublesA15PerCycleThroughput) {
  const Platform armv8 = PlatformRegistry::armv8Quad2GHz();
  const Platform a15 = PlatformRegistry::exynos5250();
  EXPECT_DOUBLE_EQ(armv8.soc.core.fp64FlopsPerCycle,
                   2.0 * a15.soc.core.fp64FlopsPerCycle);
  EXPECT_NEAR(toGflops(armv8.peakFlops()), 32.0, 1e-9);
}

TEST(Registry, EvaluatedReturnsPaperOrder) {
  const auto platforms = PlatformRegistry::evaluated();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_EQ(platforms[0].shortName, "Tegra2");
  EXPECT_EQ(platforms[1].shortName, "Tegra3");
  EXPECT_EQ(platforms[2].shortName, "Exynos5250");
  EXPECT_EQ(platforms[3].shortName, "Corei7");
}

// ---- constexpr Table 1 specs (arch/table1.hpp) ----------------------------

TEST(Table1Specs, RuntimePlatformsAreBuiltBitIdenticalFromSpecs) {
  // Every runtime Platform must carry exactly the numbers the compile-time
  // layer asserts against the paper — same expressions, bit-identical
  // doubles, so EXPECT_EQ (not NEAR) throughout.
  const auto platforms = PlatformRegistry::all();
  ASSERT_EQ(platforms.size(), arch::table1::kAll.size());
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    const Platform& p = platforms[i];
    const arch::table1::PlatformSpec& s = *arch::table1::kAll[i];
    SCOPED_TRACE(p.shortName);
    EXPECT_EQ(p.shortName, s.shortName);
    EXPECT_EQ(p.soc.cores, s.soc.cores);
    EXPECT_EQ(p.soc.threadsPerCore, s.soc.threadsPerCore);
    EXPECT_EQ(p.soc.core.fp64FlopsPerCycle, s.soc.core.fp64FlopsPerCycle);
    ASSERT_EQ(p.soc.dvfs.size(), s.soc.dvfsCount);
    for (std::size_t d = 0; d < s.soc.dvfsCount; ++d) {
      EXPECT_EQ(p.soc.dvfs[d].frequencyHz, s.soc.dvfs[d].frequencyHz);
      EXPECT_EQ(p.soc.dvfs[d].voltage, s.soc.dvfs[d].voltage);
    }
    ASSERT_EQ(p.soc.caches.size(), s.soc.cacheCount);
    for (std::size_t c = 0; c < s.soc.cacheCount; ++c)
      EXPECT_EQ(p.soc.caches[c].sizeBytes, s.soc.caches[c].sizeBytes);
    EXPECT_EQ(p.soc.memory.peakBandwidthBytesPerS,
              s.soc.memory.peakBandwidthBytesPerS);
    EXPECT_EQ(p.soc.memory.singleCoreBandwidthBytesPerS,
              s.soc.memory.singleCoreBandwidthBytesPerS);
    EXPECT_EQ(p.soc.memory.streamEfficiency, s.soc.memory.streamEfficiency);
    EXPECT_EQ(p.dramBytes, static_cast<std::size_t>(s.dramBytes));
    EXPECT_EQ(p.nicAttachment, s.nicAttachment);
    EXPECT_EQ(p.nicLinkRateBytesPerS, s.nicLinkRateBytesPerS);
    EXPECT_EQ(p.power.boardStaticW, s.power.boardStaticW);
    EXPECT_EQ(p.power.corePeakDynamicW, s.power.corePeakDynamicW);
  }
}

TEST(Table1Specs, ValidityPredicatesRejectBrokenSpecs) {
  using namespace arch::table1;
  // A correct spec passes (sanity for the helpers under test).
  EXPECT_TRUE(platformValid(kTegra2));
  // Non-monotone voltage steps are the classic transcription slip.
  PlatformSpec broken = kTegra2;
  broken.soc.dvfs[1].voltage = broken.soc.dvfs[0].voltage - 0.1;
  EXPECT_FALSE(dvfsValid(broken.soc));
  // A bandwidth the memory geometry cannot deliver (MHz-for-Hz slip).
  PlatformSpec slipped = kTegra2;
  slipped.soc.memory.frequencyHz = 333.0;  // meant mhz(333)
  EXPECT_FALSE(memoryValid(slipped.soc.memory));
  // Single-core bandwidth above the aggregate peak is inconsistent.
  PlatformSpec inverted = kTegra2;
  inverted.soc.memory.singleCoreBandwidthBytesPerS =
      2.0 * inverted.soc.memory.peakBandwidthBytesPerS;
  EXPECT_FALSE(memoryValid(inverted.soc.memory));
}

// ---- SocModel helpers -----------------------------------------------------

TEST(SocModel, VoltageInterpolatesMonotonically) {
  const Platform p = PlatformRegistry::exynos5250();
  double prev = 0.0;
  for (double f = p.soc.minFrequencyHz(); f <= p.soc.maxFrequencyHz();
       f += mhz(50)) {
    const double v = p.soc.voltageAt(f);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(p.soc.voltageAt(p.soc.minFrequencyHz() / 2),
                   p.soc.dvfs.front().voltage);
  EXPECT_DOUBLE_EQ(p.soc.voltageAt(2 * p.soc.maxFrequencyHz()),
                   p.soc.dvfs.back().voltage);
}

TEST(SocModel, PeakFlopsScalesWithCoresAndFrequency) {
  const Platform p = PlatformRegistry::tegra3();
  EXPECT_DOUBLE_EQ(p.soc.peakFlops(ghz(1.0), 1), 1.0e9);
  EXPECT_DOUBLE_EQ(p.soc.peakFlops(ghz(1.0), 4), 4.0e9);
  EXPECT_THROW(p.soc.peakFlops(ghz(1.0), 5), ContractError);
}

TEST(SocModel, BytesPerFlopMatchesTable4) {
  // Paper Table 4: Tegra2 0.06 / 0.63 / 2.50; Sandy Bridge 0.00/0.02/0.07.
  const Platform tegra2 = PlatformRegistry::tegra2();
  EXPECT_NEAR(tegra2.bytesPerFlop(gbps(1.0)), 0.0625, 0.005);
  EXPECT_NEAR(tegra2.bytesPerFlop(gbps(10.0)), 0.625, 0.01);
  EXPECT_NEAR(tegra2.bytesPerFlop(gbps(40.0)), 2.5, 0.01);
  const Platform i7 = PlatformRegistry::corei7_2760qm();
  EXPECT_NEAR(i7.bytesPerFlop(gbps(10.0)), 0.016, 0.005);
  EXPECT_NEAR(i7.bytesPerFlop(gbps(40.0)), 0.065, 0.01);
}

// ---- Power model ----------------------------------------------------------

TEST(PowerModel, IdleIsBelowLoaded) {
  for (const Platform& p : PlatformRegistry::evaluated()) {
    const power::PowerModel model(p);
    power::LoadState busy;
    busy.activeCores = p.soc.cores;
    busy.coreUtilization = 1.0;
    EXPECT_LT(model.idleWatts(), model.watts(p.maxFrequencyHz(), busy))
        << p.shortName;
  }
}

TEST(PowerModel, DynamicPowerGrowsSuperlinearlyWithFrequency) {
  const power::PowerModel model(PlatformRegistry::exynos5250());
  const double pLow = model.coreDynamicWatts(ghz(0.85));
  const double pHigh = model.coreDynamicWatts(ghz(1.7));
  // f doubles and V rises, so dynamic power must more than double.
  EXPECT_GT(pHigh, 2.0 * pLow);
}

TEST(PowerModel, MoreCoresMorePower) {
  const Platform p = PlatformRegistry::tegra3();
  const power::PowerModel model(p);
  double prev = 0.0;
  for (int cores = 0; cores <= p.soc.cores; ++cores) {
    power::LoadState load;
    load.activeCores = cores;
    load.coreUtilization = 1.0;
    const double watts = model.watts(p.maxFrequencyHz(), load);
    EXPECT_GT(watts, prev);
    prev = watts;
  }
}

TEST(PowerModel, BoardStaticDominatesOnMobilePlatforms) {
  // The paper's core energy observation: the SoC is *not* the main power
  // sink on the developer boards.
  for (const Platform& p : {PlatformRegistry::tegra2(),
                            PlatformRegistry::tegra3(),
                            PlatformRegistry::exynos5250()}) {
    const power::PowerModel model(p);
    power::LoadState busy;
    busy.activeCores = 1;
    busy.coreUtilization = 1.0;
    const double total = model.watts(p.maxFrequencyHz(), busy);
    EXPECT_GT(p.power.boardStaticW, 0.5 * total) << p.shortName;
  }
}

TEST(PowerModel, InvalidLoadRejected) {
  const Platform p = PlatformRegistry::tegra2();
  const power::PowerModel model(p);
  power::LoadState load;
  load.activeCores = p.soc.cores + 1;
  EXPECT_THROW(model.watts(p.maxFrequencyHz(), load), ContractError);
}

// ---- Simulated meter ------------------------------------------------------

TEST(PowerMeter, ConstantTraceIntegratesExactly) {
  power::SimulatedPowerMeter::Config cfg;
  cfg.relativeError = 0.0;
  power::SimulatedPowerMeter meter(cfg);
  const auto reading = meter.measure([](double) { return 7.5; }, 0.0, 10.0);
  EXPECT_NEAR(reading.energyJ, 75.0, 1e-9);
  EXPECT_NEAR(reading.averageW, 7.5, 1e-9);
  EXPECT_EQ(reading.samples, 100u);
}

TEST(PowerMeter, NoiseIsWithinSpec) {
  power::SimulatedPowerMeter meter;  // 0.1 % noise
  const auto reading = meter.measure([](double) { return 100.0; }, 0.0,
                                     60.0);
  EXPECT_NEAR(reading.averageW, 100.0, 0.1);  // well within 0.1 % * sqrt(n)
}

TEST(PowerMeter, StepTraceCapturedAtSampleResolution) {
  power::SimulatedPowerMeter::Config cfg;
  cfg.relativeError = 0.0;
  power::SimulatedPowerMeter meter(cfg);
  // 5 W for 5 s then 10 W for 5 s = 75 J.
  const auto reading = meter.measure(
      [](double t) { return t < 5.0 ? 5.0 : 10.0; }, 0.0, 10.0);
  EXPECT_NEAR(reading.energyJ, 75.0, 0.5);
}

TEST(PowerMeter, EmptyWindowRejected) {
  power::SimulatedPowerMeter meter;
  EXPECT_THROW(meter.measure([](double) { return 1.0; }, 5.0, 5.0),
               ContractError);
}

TEST(PowerMetrics, MflopsPerWatt) {
  // 1 GFLOP in 1 s at 10 W = 100 MFLOPS/W.
  EXPECT_NEAR(power::mflopsPerWatt(1e9, 1.0, 10.0), 100.0, 1e-9);
}

}  // namespace
}  // namespace tibsim
