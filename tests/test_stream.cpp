// Tests for the STREAM benchmark implementation and its modelled
// per-platform bandwidths (Figure 5).

#include <gtest/gtest.h>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/kernels/stream.hpp"

namespace tibsim::kernels {
namespace {

using namespace units;
using arch::PlatformRegistry;

class StreamOps : public ::testing::TestWithParam<std::tuple<StreamOp, bool>> {
};

TEST_P(StreamOps, RunsAndVerifies) {
  const auto [op, parallel] = GetParam();
  StreamBenchmark bench;
  bench.setup(10000);
  if (parallel) {
    ThreadPool pool(3);
    bench.runParallel(op, pool);
  } else {
    bench.runSerial(op);
  }
  EXPECT_TRUE(bench.verify(op)) << toString(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, StreamOps,
    ::testing::Combine(::testing::Values(StreamOp::Copy, StreamOp::Scale,
                                         StreamOp::Add, StreamOp::Triad),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<StreamOps::ParamType>& info) {
      return toString(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_par" : "_ser");
    });

TEST(Stream, FullSequenceVerifies) {
  // The canonical STREAM loop order: copy, scale, add, triad.
  StreamBenchmark bench;
  bench.setup(5000);
  for (StreamOp op : {StreamOp::Copy, StreamOp::Scale, StreamOp::Add,
                      StreamOp::Triad}) {
    bench.runSerial(op);
    ASSERT_TRUE(bench.verify(op)) << toString(op);
  }
}

TEST(Stream, BytesAndFlopsPerElement) {
  EXPECT_DOUBLE_EQ(streamBytesPerElement(StreamOp::Copy), 16.0);
  EXPECT_DOUBLE_EQ(streamBytesPerElement(StreamOp::Triad), 24.0);
  EXPECT_DOUBLE_EQ(streamFlopsPerElement(StreamOp::Copy), 0.0);
  EXPECT_DOUBLE_EQ(streamFlopsPerElement(StreamOp::Scale), 1.0);
  EXPECT_DOUBLE_EQ(streamFlopsPerElement(StreamOp::Triad), 2.0);
}

TEST(Stream, ProfileMatchesSize) {
  StreamBenchmark bench;
  bench.setup(1000);
  const auto profile = bench.profile(StreamOp::Add);
  EXPECT_DOUBLE_EQ(profile.bytes, 24.0 * 1000);
  EXPECT_DOUBLE_EQ(profile.flops, 1000.0);
}

// ---- Modelled Figure 5 behaviour ------------------------------------------

TEST(StreamModel, ExynosRoughly4xTegraBandwidth) {
  // "a significant improvement in memory bandwidth, of about 4.5 times,
  //  between the Tegra platforms and the Samsung Exynos 5250"
  const auto tegra2 = PlatformRegistry::tegra2();
  const auto exynos = PlatformRegistry::exynos5250();
  const double tegraBw = StreamBenchmark::modeledBandwidth(
      tegra2, StreamOp::Triad, tegra2.soc.cores, tegra2.maxFrequencyHz());
  const double exynosBw = StreamBenchmark::modeledBandwidth(
      exynos, StreamOp::Triad, exynos.soc.cores, exynos.maxFrequencyHz());
  EXPECT_GT(exynosBw / tegraBw, 3.4);
  EXPECT_LT(exynosBw / tegraBw, 5.5);
}

TEST(StreamModel, MulticoreEfficienciesMatchPaper) {
  // Paper: 62 % (Tegra 2), 27 % (Tegra 3), 52 % (Exynos 5250), 57 % (i7).
  const struct {
    arch::Platform platform;
    double efficiency;
  } expectations[] = {
      {PlatformRegistry::tegra2(), 0.62},
      {PlatformRegistry::tegra3(), 0.27},
      {PlatformRegistry::exynos5250(), 0.52},
      {PlatformRegistry::corei7_2760qm(), 0.57},
  };
  for (const auto& e : expectations) {
    const double bw = StreamBenchmark::modeledBandwidth(
        e.platform, StreamOp::Triad, e.platform.soc.cores,
        e.platform.maxFrequencyHz());
    const double eff = bw / e.platform.soc.memory.peakBandwidthBytesPerS;
    EXPECT_NEAR(eff, e.efficiency, 0.06) << e.platform.shortName;
  }
}

TEST(StreamModel, Tegra3HasLowestEfficiencyDespiteHigherPeak) {
  const auto tegra2 = PlatformRegistry::tegra2();
  const auto tegra3 = PlatformRegistry::tegra3();
  const double eff2 = StreamBenchmark::modeledBandwidth(
                          tegra2, StreamOp::Triad, 2,
                          tegra2.maxFrequencyHz()) /
                      tegra2.soc.memory.peakBandwidthBytesPerS;
  const double eff3 = StreamBenchmark::modeledBandwidth(
                          tegra3, StreamOp::Triad, 4,
                          tegra3.maxFrequencyHz()) /
                      tegra3.soc.memory.peakBandwidthBytesPerS;
  EXPECT_GT(tegra3.soc.memory.peakBandwidthBytesPerS,
            tegra2.soc.memory.peakBandwidthBytesPerS);
  EXPECT_LT(eff3, eff2);
}

TEST(StreamModel, SingleCoreAtMostMulticore) {
  for (const auto& platform : PlatformRegistry::evaluated()) {
    for (StreamOp op : {StreamOp::Copy, StreamOp::Scale, StreamOp::Add,
                        StreamOp::Triad}) {
      const double one = StreamBenchmark::modeledBandwidth(
          platform, op, 1, platform.maxFrequencyHz());
      const double all = StreamBenchmark::modeledBandwidth(
          platform, op, platform.soc.cores, platform.maxFrequencyHz());
      EXPECT_LE(one, all * 1.0001) << platform.shortName << toString(op);
    }
  }
}

}  // namespace
}  // namespace tibsim::kernels
