// Property tests for the roofline execution model.

#include <gtest/gtest.h>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/perfmodel/execution_model.hpp"

namespace tibsim::perfmodel {
namespace {

using namespace units;
using arch::Platform;
using arch::PlatformRegistry;

WorkProfile computeBound() {
  return {1e9, 1e6, AccessPattern::Resident, 0.9, 1.0, 0.0};
}

WorkProfile memoryBound() {
  return {1e6, 1e9, AccessPattern::Streaming, 1.0, 1.0, 0.0};
}

TEST(ExecutionModel, ComputeBoundScalesInverselyWithFrequency) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra2();
  const double t1 = model.time(p, computeBound(), ghz(0.5), 1);
  const double t2 = model.time(p, computeBound(), ghz(1.0), 1);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(ExecutionModel, MemoryBoundSaturatesWithCores) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::exynos5250();
  const double f = p.maxFrequencyHz();
  const double t1 = model.time(p, memoryBound(), f, 1);
  const double t2 = model.time(p, memoryBound(), f, 2);
  // Adding the second core helps less than 2x (SoC bandwidth ceiling).
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, t1 / 2.0);
}

TEST(ExecutionModel, ComputeBoundScalesWithCores) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra3();
  const double f = p.maxFrequencyHz();
  const double t1 = model.time(p, computeBound(), f, 1);
  const double t4 = model.time(p, computeBound(), f, 4);
  EXPECT_NEAR(t1 / t4, 4.0, 0.01);
}

TEST(ExecutionModel, AmdahlLimitsSpeedup) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra3();
  WorkProfile halfSerial = computeBound();
  halfSerial.parallelFraction = 0.5;
  const double t1 = model.time(p, halfSerial, ghz(1.0), 1);
  const double t4 = model.time(p, halfSerial, ghz(1.0), 4);
  // Amdahl: max speedup with 50 % serial work is 1/(0.5 + 0.5/4) = 1.6.
  EXPECT_NEAR(t1 / t4, 1.6, 0.01);
}

TEST(ExecutionModel, LoadImbalanceSlowsParallelExecution) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra3();
  WorkProfile balanced = computeBound();
  WorkProfile imbalanced = computeBound();
  imbalanced.loadImbalance = 0.3;
  EXPECT_GT(model.time(p, imbalanced, ghz(1.0), 4),
            model.time(p, balanced, ghz(1.0), 4));
  // Serial execution is unaffected by imbalance only through the parallel
  // share; with parallelFraction=1 the slowdown is exactly 1.3.
  EXPECT_NEAR(model.time(p, imbalanced, ghz(1.0), 4) /
                  model.time(p, balanced, ghz(1.0), 4),
              1.3, 1e-6);
}

TEST(ExecutionModel, PatternFactorsOrdered) {
  // Streaming extracts the most bandwidth; random the least.
  EXPECT_GT(patternBandwidthFactor(AccessPattern::Streaming),
            patternBandwidthFactor(AccessPattern::Strided));
  EXPECT_GT(patternBandwidthFactor(AccessPattern::Strided),
            patternBandwidthFactor(AccessPattern::Irregular));
  EXPECT_GT(patternBandwidthFactor(AccessPattern::Irregular),
            patternBandwidthFactor(AccessPattern::Random));
}

TEST(ExecutionModel, BandwidthRespectsSocCeiling) {
  const ExecutionModel model;
  for (const Platform& p : PlatformRegistry::evaluated()) {
    const double bw = model.achievableBandwidth(
        p, AccessPattern::Streaming, p.soc.cores, p.maxFrequencyHz());
    EXPECT_LE(bw, p.soc.memory.peakBandwidthBytesPerS) << p.shortName;
    EXPECT_GT(bw, 0.1 * p.soc.memory.peakBandwidthBytesPerS) << p.shortName;
  }
}

TEST(ExecutionModel, SingleCoreBandwidthBelowAllCore) {
  const ExecutionModel model;
  for (const Platform& p : PlatformRegistry::evaluated()) {
    if (p.soc.cores < 2) continue;
    const double one = model.achievableBandwidth(
        p, AccessPattern::Streaming, 1, p.maxFrequencyHz());
    const double all = model.achievableBandwidth(
        p, AccessPattern::Streaming, p.soc.cores, p.maxFrequencyHz());
    EXPECT_LE(one, all) << p.shortName;
  }
}

TEST(ExecutionModel, SingleCoreBandwidthDropsWithFrequency) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::exynos5250();
  const double bwLow =
      model.achievableBandwidth(p, AccessPattern::Streaming, 1, ghz(0.2));
  const double bwHigh =
      model.achievableBandwidth(p, AccessPattern::Streaming, 1, ghz(1.7));
  EXPECT_LT(bwLow, bwHigh);
  // ...but not proportionally: the miss-limited core keeps a floor.
  EXPECT_GT(bwLow, bwHigh * (ghz(0.2) / ghz(1.7)));
}

TEST(ExecutionModel, RooflineTakesTheMax) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra2();
  // A kernel with huge bytes and tiny flops must be memory-time dominated.
  const WorkProfile mem = memoryBound();
  const double t = model.time(p, mem, ghz(1.0), 1);
  const double bw =
      model.achievableBandwidth(p, AccessPattern::Streaming, 1, ghz(1.0));
  EXPECT_NEAR(t, mem.bytes / bw, 1e-9);
}

TEST(ExecutionModel, ZeroWorkTakesZeroTime) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra2();
  const WorkProfile none{0.0, 0.0, AccessPattern::Streaming, 1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(model.time(p, none, ghz(1.0), 1), 0.0);
}

TEST(ExecutionModel, InvalidArgumentsRejected) {
  const ExecutionModel model;
  const Platform p = PlatformRegistry::tegra2();
  EXPECT_THROW(model.time(p, computeBound(), ghz(1.0), 0),
               tibsim::ContractError);
  EXPECT_THROW(model.time(p, computeBound(), ghz(1.0), p.soc.cores + 1),
               tibsim::ContractError);
  EXPECT_THROW(model.time(p, computeBound(), 0.0, 1),
               tibsim::ContractError);
}

TEST(ExecutionModel, A15FasterPerCoreThanA9AtSameFrequency) {
  const ExecutionModel model;
  const double tA9 = model.time(PlatformRegistry::tegra2(), computeBound(),
                                ghz(1.0), 1);
  const double tA15 = model.time(PlatformRegistry::exynos5250(),
                                 computeBound(), ghz(1.0), 1);
  EXPECT_GT(tA9 / tA15, 1.15);  // paper: ~1.3x on the suite
  EXPECT_LT(tA9 / tA15, 1.6);
}

TEST(ExecutionModel, SandyBridgeFastestPerCore) {
  const ExecutionModel model;
  const double tA15 = model.time(PlatformRegistry::exynos5250(),
                                 computeBound(), ghz(1.7), 1);
  const double tSnb = model.time(PlatformRegistry::corei7_2760qm(),
                                 computeBound(), ghz(2.4), 1);
  EXPECT_GT(tA15 / tSnb, 2.0);  // paper: ~3x at max frequencies
  EXPECT_LT(tA15 / tSnb, 4.5);
}

// Parameterised sweep: time is finite, positive, and monotonically
// non-increasing in core count for every platform/pattern combination.
class MonotonicCores
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MonotonicCores, TimeNonIncreasingInCores) {
  const auto [platformIdx, patternIdx] = GetParam();
  const auto platforms = PlatformRegistry::evaluated();
  const Platform& p = platforms[static_cast<std::size_t>(platformIdx)];
  const auto pattern = static_cast<AccessPattern>(patternIdx);
  const WorkProfile work{5e8, 2e8, pattern, 0.8, 1.0, 0.0};
  const ExecutionModel model;
  double prev = 1e300;
  for (int cores = 1; cores <= p.soc.cores; ++cores) {
    const double t = model.time(p, work, p.maxFrequencyHz(), cores);
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, prev * (1.0 + 1e-12));
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatformsAllPatterns, MonotonicCores,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 7)));

}  // namespace
}  // namespace tibsim::perfmodel
