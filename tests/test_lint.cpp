// Tests for tools/lint (tibsim-lint): every rule must fire on its bad
// fixture and stay silent on the good one, the suppression grammar must
// work in all three scopes (same line, standalone-next-line, file), and —
// the acceptance bar for the CI job — the repo's own tree must lint clean.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace tibsim::lint {
namespace {

namespace fs = std::filesystem;

std::string readFixture(const std::string& relative) {
  const fs::path path = fs::path(TIBSIM_LINT_FIXTURE_DIR) / relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

Options only(const std::string& rule) {
  Options options;
  options.onlyRules = {rule};
  return options;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

TEST(LintRules, TableHasTenDocumentedRules) {
  const std::vector<RuleInfo> all = rules();
  ASSERT_GE(all.size(), 12u);
  bool hasRegistryDocs = false;
  for (const RuleInfo& rule : all) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_FALSE(rule.rationale.empty()) << rule.id;
    if (rule.id == "registry-docs") hasRegistryDocs = true;
  }
  EXPECT_TRUE(hasRegistryDocs);
}

// ---------------------------------------------------------------------------
// Per-rule fixtures: bad fires, good is silent
// ---------------------------------------------------------------------------

struct FixtureCase {
  const char* rule;
  const char* badFixture;
  const char* badLintPath;  ///< path the content is linted under
  int badLine;              ///< first expected finding line
  const char* goodFixture;
  const char* goodLintPath;
};

// The lint path matters: fiber-block/thread-local are scoped to sim paths,
// and the good fiber_block fixture demonstrates exactly that scoping.
const FixtureCase kFixtureCases[] = {
    {"wall-clock", "bad/wall_clock.cpp", "src/core/fixture.cpp", 5,
     "good/wall_clock.cpp", "src/core/fixture.cpp"},
    {"random-source", "bad/random_source.cpp", "src/core/fixture.cpp", 4,
     "good/random_source.cpp", "src/core/fixture.cpp"},
    {"unordered-iter", "bad/unordered_iter.cpp", "src/core/fixture.cpp", 7,
     "good/unordered_iter.cpp", "src/core/fixture.cpp"},
    {"pointer-key", "bad/pointer_key.cpp", "src/core/fixture.cpp", 5,
     "good/pointer_key.cpp", "src/core/fixture.cpp"},
    {"fiber-block", "bad/fiber_block.cpp", "src/sim/fixture.cpp", 6,
     "good/fiber_block.cpp", "src/core/fixture.cpp"},
    {"thread-local", "bad/thread_local.cpp", "src/mpi/fixture.cpp", 2,
     "good/thread_local.cpp", "src/sim/fixture.cpp"},
    {"pragma-once", "bad/missing_pragma_once.hpp",
     "include/tibsim/common/fixture.hpp", 1, "good/pragma_once.hpp",
     "include/tibsim/common/fixture.hpp"},
    {"using-namespace", "bad/using_namespace.hpp",
     "include/tibsim/common/fixture.hpp", 5, "good/using_namespace.hpp",
     "include/tibsim/common/fixture.hpp"},
    {"mpi-contract", "bad/mpi_contract.cpp", "src/apps/fixture.cpp", 11,
     "good/mpi_contract.cpp", "src/apps/fixture.cpp"},
    {"shard-shared", "bad/shard_shared.cpp", "src/net/fixture.cpp", 4,
     "good/shard_shared.cpp", "src/net/fixture.cpp"},
    // Same rule through an obs-layer path: trace sinks and link telemetry
    // mutate from inside the event loop, so src/obs/ counts as sim code.
    {"shard-shared", "bad/obs_shared.cpp", "src/obs/fixture.cpp", 5,
     "good/obs_shared.cpp", "src/obs/fixture.cpp"},
    {"wildcard-recv", "bad/wildcard_recv.cpp", "src/apps/fixture.cpp", 6,
     "good/wildcard_recv.cpp", "src/apps/fixture.cpp"},
    // The good fixture also covers the uniform-condition, membership-
    // scoped-communicator and waived-asymmetry escapes.
    {"collective-match", "bad/collective_match.cpp", "src/apps/fixture.cpp",
     11, "good/collective_match.cpp", "src/apps/fixture.cpp"},
};

TEST(LintFixtures, EveryRuleFiresOnItsBadFixture) {
  for (const FixtureCase& c : kFixtureCases) {
    SCOPED_TRACE(c.rule);
    const std::vector<Finding> findings =
        lintSource(c.badLintPath, readFixture(c.badFixture), only(c.rule));
    ASSERT_FALSE(findings.empty()) << "rule did not fire: " << c.rule;
    EXPECT_EQ(findings.front().rule, c.rule);
    EXPECT_EQ(findings.front().line, c.badLine);
    EXPECT_EQ(findings.front().file, c.badLintPath);
    EXPECT_FALSE(findings.front().message.empty());
    EXPECT_FALSE(findings.front().suggestion.empty());
  }
}

TEST(LintFixtures, EveryRuleIsSilentOnItsGoodFixture) {
  for (const FixtureCase& c : kFixtureCases) {
    SCOPED_TRACE(c.rule);
    const std::vector<Finding> findings =
        lintSource(c.goodLintPath, readFixture(c.goodFixture), only(c.rule));
    EXPECT_TRUE(findings.empty())
        << formatFindings(findings, /*fixSuggestions=*/false);
  }
}

TEST(LintFixtures, PatternsInsideStringsAndCommentsNeverFire) {
  const std::vector<Finding> findings = lintSource(
      "src/core/fixture.cpp", readFixture("good/strings_and_comments.cpp"));
  EXPECT_TRUE(findings.empty())
      << formatFindings(findings, /*fixSuggestions=*/false);
}

TEST(LintFixtures, MpiContractAlsoFlagsReinterpretCastToDouble) {
  const std::vector<Finding> findings =
      lintSource("src/apps/fixture.cpp", readFixture("bad/mpi_contract.cpp"),
                 only("mpi-contract"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[1].line, 15);
}

TEST(LintCollectiveMatch, WitnessListsBothArmSequences) {
  const std::vector<Finding> findings =
      lintSource("src/apps/fixture.cpp",
                 readFixture("bad/collective_match.cpp"),
                 only("collective-match"));
  ASSERT_EQ(findings.size(), 2u);
  // Divergent arms: the witness names both sequences in order.
  EXPECT_NE(findings[0].message.find("[bcast -> barrier]"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("[barrier]"), std::string::npos);
  // Early return: the falling-through arm reaches the later collective.
  EXPECT_EQ(findings[1].line, 21);
  EXPECT_NE(findings[1].message.find("[no collective]"), std::string::npos)
      << findings[1].message;
  EXPECT_NE(findings[1].message.find("allreduceSum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppression grammar
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesOnlyTheNamedRule) {
  // rand() with a waiver for a *different* rule must still fire.
  const std::string wrongId =
      "int f() { return rand(); }  // tibsim-lint: allow(wall-clock)\n";
  EXPECT_EQ(lintSource("src/core/x.cpp", wrongId).size(), 1u);
  const std::string rightId =
      "int f() { return rand(); }  // tibsim-lint: allow(random-source)\n";
  EXPECT_TRUE(lintSource("src/core/x.cpp", rightId).empty());
}

TEST(LintSuppression, StandaloneAnnotationCoversTheNextLineOnly) {
  const std::string content =
      "// tibsim-lint: allow(random-source)\n"
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const std::vector<Finding> findings =
      lintSource("src/core/x.cpp", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().line, 3);
}

TEST(LintSuppression, AllowFileCoversTheWholeFile) {
  const std::string content =
      "// tibsim-lint: allowfile(random-source)\n"
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  EXPECT_TRUE(lintSource("src/core/x.cpp", content).empty());
}

TEST(LintSuppression, OneAnnotationCanListSeveralRules) {
  const std::string content =
      "#include <chrono>\n"
      "long f() { return rand() + std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }"
      "  // tibsim-lint: allow(random-source, wall-clock)\n";
  EXPECT_TRUE(lintSource("src/core/x.cpp", content).empty());
}

// ---------------------------------------------------------------------------
// Rule selection and output format
// ---------------------------------------------------------------------------

TEST(LintOptions, OnlyRulesFiltersFindings) {
  const std::string content = readFixture("bad/wall_clock.cpp");
  EXPECT_FALSE(
      lintSource("src/core/x.cpp", content, only("wall-clock")).empty());
  EXPECT_TRUE(
      lintSource("src/core/x.cpp", content, only("random-source")).empty());
}

TEST(LintFormat, FindingsRenderAsFileLineRuleMessage) {
  // The seeded-violation demonstration: a fresh violation produces a
  // nonzero finding list, which is what turns the CI job red.
  const std::string seeded =
      "#include <chrono>\n"
      "double now() {\n"
      "  return std::chrono::duration<double>(\n"
      "      std::chrono::system_clock::now().time_since_epoch()).count();\n"
      "}\n";
  const std::vector<Finding> findings =
      lintSource("src/core/seeded.cpp", seeded);
  ASSERT_FALSE(findings.empty());
  const std::string plain = formatFindings(findings, /*fixSuggestions=*/false);
  EXPECT_NE(plain.find("src/core/seeded.cpp:4: [wall-clock]"),
            std::string::npos)
      << plain;
  EXPECT_EQ(plain.find("suggestion:"), std::string::npos);
  const std::string withFix = formatFindings(findings, /*fixSuggestions=*/true);
  EXPECT_NE(withFix.find("suggestion:"), std::string::npos);
}

TEST(LintFormat, SarifDocumentCarriesRulesAndResults) {
  const std::vector<Finding> findings =
      lintSource("src/apps/fixture.cpp",
                 readFixture("bad/collective_match.cpp"),
                 only("collective-match"));
  ASSERT_FALSE(findings.empty());
  const std::string sarif = formatSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tibsim-lint\""), std::string::npos);
  // The full rule table ships even when only one rule fired.
  EXPECT_NE(sarif.find("\"id\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"collective-match\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 11"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/apps/fixture.cpp\""),
            std::string::npos);
  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(sarif, formatSarif(findings));
}

// ---------------------------------------------------------------------------
// registry-docs (tree-level rule)
// ---------------------------------------------------------------------------

class LintRegistryDocsTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST_F as its own process, so a
    // shared directory name races under parallel execution.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(testing::TempDir()) /
            (std::string("tibsim_lint_docs_tree_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "core");
    writeFile(root_ / "src" / "core" / "experiments.cpp",
              "void registerAll(ExperimentRegistry& registry) {\n"
              "  registry.add(std::make_unique<LambdaExperiment>(\n"
              "      \"figx\", \"Figure X\", \"a fixture experiment\", "
              "runFigX));\n"
              "}\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(LintRegistryDocsTest, UndocumentedExperimentIsFlagged) {
  writeFile(root_ / "EXPERIMENTS.md", "# EXPERIMENTS\n\nnothing here\n");
  const std::vector<Finding> findings = lintRegistryDocs(root_.string());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().rule, "registry-docs");
  EXPECT_NE(findings.front().message.find("figx"), std::string::npos);
}

TEST_F(LintRegistryDocsTest, BacktickedSectionSilencesTheFinding) {
  writeFile(root_ / "EXPERIMENTS.md",
            "# EXPERIMENTS\n\n## Figure X (`figx`)\n\ncovered.\n");
  EXPECT_TRUE(lintRegistryDocs(root_.string()).empty());
}

TEST_F(LintRegistryDocsTest, CompatBinaryNamePrefixCountsAsDocumented) {
  // `figx_long_binary_name` documents the registered name `figx`, matching
  // how EXPERIMENTS.md titles sections after the standalone binaries.
  writeFile(root_ / "EXPERIMENTS.md",
            "# EXPERIMENTS\n\n## Figure X (`figx_long_binary_name`)\n");
  EXPECT_TRUE(lintRegistryDocs(root_.string()).empty());
}

// ---------------------------------------------------------------------------
// The repo's own tree must be clean (the CI acceptance bar)
// ---------------------------------------------------------------------------

TEST(LintTree, RepositoryLintsClean) {
  const std::vector<Finding> findings = lintTree(TIBSIM_REPO_ROOT);
  EXPECT_TRUE(findings.empty())
      << "repo tree has lint findings:\n"
      << formatFindings(findings, /*fixSuggestions=*/true);
}

TEST(LintTree, FindingsAreIdenticalAcrossJobCounts) {
  // The tree walk lints files on a TaskPool; per-file slot merging plus
  // the final sort must make the result a pure function of the tree.
  Options serial;
  serial.jobs = 1;
  Options parallel;
  parallel.jobs = 4;
  const std::vector<Finding> a = lintTree(TIBSIM_REPO_ROOT, serial);
  const std::vector<Finding> b = lintTree(TIBSIM_REPO_ROOT, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].message, b[i].message);
  }
}

}  // namespace
}  // namespace tibsim::lint
