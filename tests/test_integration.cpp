// Cross-module integration tests: whole-experiment runs at reduced scale
// (full-scale runs live in the bench binaries) plus the HPL/Green500 story.

#include <gtest/gtest.h>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/core/experiments.hpp"

namespace tibsim::core {
namespace {

using namespace units;

TEST(Integration, MicroKernelExperimentProducesFullSweeps) {
  const MicroKernelExperiment experiment(
      MicroKernelExperiment::Mode::SingleCore);
  const auto sweeps = experiment.run();
  ASSERT_EQ(sweeps.size(), 4u);
  for (const auto& sweep : sweeps) {
    EXPECT_FALSE(sweep.points.empty());
    for (const auto& point : sweep.points) {
      EXPECT_GT(point.suiteSeconds, 0.0);
      EXPECT_GT(point.suiteEnergyJ, 0.0);
      EXPECT_GT(point.speedupVsBaseline, 0.0);
      EXPECT_EQ(point.kernels.size(), 11u);
    }
  }
}

TEST(Integration, MultiCoreSweepBeatsSingleCore) {
  const auto single =
      MicroKernelExperiment(MicroKernelExperiment::Mode::SingleCore).run();
  const auto multi =
      MicroKernelExperiment(MicroKernelExperiment::Mode::MultiCore).run();
  for (std::size_t p = 0; p < single.size(); ++p) {
    const auto& s = single[p].points.back();
    const auto& m = multi[p].points.back();
    EXPECT_GT(m.speedupVsBaseline, s.speedupVsBaseline)
        << single[p].platform;
    EXPECT_LT(m.suiteEnergyJ, s.suiteEnergyJ) << single[p].platform;
  }
}

TEST(Integration, StreamExperimentShape) {
  const auto rows = streamExperiment();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_GT(row.singleCoreBytesPerS[i], 0.0) << row.platform;
      EXPECT_LE(row.singleCoreBytesPerS[i],
                row.multiCoreBytesPerS[i] * 1.001)
          << row.platform;
    }
    EXPECT_GT(row.efficiencyVsPeak, 0.15) << row.platform;
    EXPECT_LT(row.efficiencyVsPeak, 0.75) << row.platform;
  }
}

TEST(Integration, ScalabilityCurvesAtReducedScale) {
  cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  const auto curves = scalabilityExperiment(spec, {4, 8, 16, 32});
  // PEPC's reference input does not fit below 24 nodes, so at these counts
  // only the other four applications report.
  ASSERT_GE(curves.size(), 4u);
  for (const auto& curve : curves) {
    EXPECT_FALSE(curve.points.empty()) << curve.application;
    double prevSpeedup = 0.0;
    for (const auto& point : curve.points) {
      EXPECT_GT(point.speedup, prevSpeedup * 0.95) << curve.application;
      prevSpeedup = point.speedup;
    }
    // No curve is super-linear beyond noise.
    EXPECT_LT(curve.points.back().speedup,
              curve.points.back().nodes * 1.15)
        << curve.application;
  }
}

TEST(Integration, SpecfemScalesBetterThanHydro) {
  cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  const auto curves = scalabilityExperiment(spec, {4, 32});
  double specfemEff = 0.0, hydroEff = 0.0;
  for (const auto& curve : curves) {
    if (curve.points.size() < 2) continue;
    const double eff =
        curve.points.back().speedup / curve.points.back().nodes;
    if (curve.application == "SPECFEM3D") specfemEff = eff;
    if (curve.application == "HYDRO") hydroEff = eff;
  }
  EXPECT_GT(specfemEff, 0.0);
  EXPECT_GT(hydroEff, 0.0);
  EXPECT_GT(specfemEff, hydroEff);
}

TEST(Integration, HplGreen500AtModerateScale) {
  cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  cluster::ClusterSimulation sim(spec);
  // 16 nodes with a reduced memory fraction keeps the test fast; the
  // full 96-node run lives in bench/hpl_green500.
  const auto result = apps::HplBenchmark::run(sim, 16, 0.10);
  EXPECT_GT(result.efficiency(), 0.35);
  EXPECT_LT(result.efficiency(), 0.60);
  EXPECT_GT(result.mflopsPerWatt, 60.0);
  EXPECT_LT(result.mflopsPerWatt, 220.0);
}

TEST(Integration, HplHeadlineNumbersAt96Nodes) {
  // The paper's Section 4 headline: ~97 GFLOPS, 51 % efficiency,
  // ~120 MFLOPS/W on 96 Tibidabo nodes.
  cluster::ClusterSimulation sim(cluster::ClusterSpec::tibidabo());
  const auto result = apps::HplBenchmark::run(sim, 96);
  EXPECT_NEAR(result.gflops, 97.0, 12.0);
  EXPECT_NEAR(result.efficiency(), 0.51, 0.05);
  EXPECT_NEAR(result.mflopsPerWatt, 120.0, 15.0);
}

TEST(Integration, OpenMxImprovesHplOverTcp) {
  cluster::ClusterSimulation tcp(cluster::ClusterSpec::tibidabo());
  cluster::ClusterSimulation omx(cluster::ClusterSpec::tibidaboOpenMx());
  const auto rTcp = apps::HplBenchmark::run(tcp, 8, 0.08);
  const auto rOmx = apps::HplBenchmark::run(omx, 8, 0.08);
  EXPECT_GT(rOmx.gflops, rTcp.gflops);
}

TEST(Integration, PingPongSweepSeriesConsistent) {
  const auto series = pingPongSweep(arch::PlatformRegistry::tegra2(),
                                    net::Protocol::TcpIp, ghz(1.0),
                                    latencyMessageSizes());
  ASSERT_EQ(series.messageBytes.size(), latencyMessageSizes().size());
  for (double l : series.latencySeconds) {
    EXPECT_GT(l, 50e-6);
    EXPECT_LT(l, 200e-6);
  }
}

}  // namespace
}  // namespace tibsim::core
