// Tests for the cluster layer: the Tibidabo spec, job running, energy
// accounting, and small distributed app runs.

#include <gtest/gtest.h>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/sim/execution_context.hpp"

namespace tibsim::cluster {
namespace {

using namespace units;

TEST(ClusterSpec, TibidaboMatchesPaper) {
  const ClusterSpec spec = ClusterSpec::tibidabo();
  EXPECT_EQ(spec.nodes, 192);
  EXPECT_EQ(spec.nodePlatform.shortName, "Tegra2");
  EXPECT_EQ(spec.ranksPerNode, 2);
  EXPECT_EQ(spec.protocol, net::Protocol::TcpIp);
  EXPECT_DOUBLE_EQ(spec.topology.linkRateBytesPerS, gbps(1.0));
  EXPECT_DOUBLE_EQ(spec.topology.bisectionBytesPerS, gbps(8.0));
}

TEST(ClusterSpec, TibidaboScaledKeepsNodeAndGrowsBisection) {
  const ClusterSpec base = ClusterSpec::tibidabo();
  const ClusterSpec big = ClusterSpec::tibidaboScaled(1024);
  EXPECT_EQ(big.nodes, 1024);
  EXPECT_EQ(big.ranksPerNode, base.ranksPerNode);
  EXPECT_EQ(big.nodePlatform.shortName, base.nodePlatform.shortName);
  EXPECT_DOUBLE_EQ(big.topology.linkRateBytesPerS,
                   base.topology.linkRateBytesPerS);
  // Bisection scales with node count so oversubscription stays at the
  // prototype's ratio rather than collapsing at 1024 nodes.
  EXPECT_DOUBLE_EQ(big.topology.bisectionBytesPerS,
                   gbps(8.0 * 1024.0 / 192.0));
  // At or below the prototype size the spec matches the real machine.
  EXPECT_DOUBLE_EQ(ClusterSpec::tibidaboScaled(128).topology.bisectionBytesPerS,
                   gbps(8.0));
  EXPECT_EQ(ClusterSpec::tibidaboScaled(128).nodes, 128);
}

TEST(ClusterSpec, OpenMxVariantDiffersOnlyInProtocol) {
  const ClusterSpec a = ClusterSpec::tibidabo();
  const ClusterSpec b = ClusterSpec::tibidaboOpenMx();
  EXPECT_EQ(b.protocol, net::Protocol::OpenMx);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.nodePlatform.shortName, b.nodePlatform.shortName);
}

TEST(ClusterSim, JobProducesSensibleEnergyAccounting) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  const JobResult result = sim.runJob(4, [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(0.5);
    ctx.barrier();
  });
  EXPECT_EQ(result.nodes, 4);
  EXPECT_EQ(result.ranks, 8);
  EXPECT_GT(result.wallClockSeconds, 0.5);
  EXPECT_GT(result.energyJ, 0.0);
  // 4 Tegra2 nodes: static power alone is ~27 W; busy adds a little.
  EXPECT_GT(result.averagePowerW, 4 * 6.0);
  EXPECT_LT(result.averagePowerW, 4 * 12.0);
}

TEST(ClusterSim, IdleJobStillPaysStaticPower) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  const JobResult busy = sim.runJob(2, [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(1.0);
  });
  const JobResult idle = sim.runJob(2, [](mpi::MpiContext& ctx) {
    if (ctx.rank() == 0) ctx.computeSeconds(1.0);
  });
  EXPECT_GT(busy.energyJ, idle.energyJ);
  EXPECT_GT(idle.energyJ, 0.5 * busy.energyJ);  // static dominates
}

TEST(ClusterSim, RejectsOversizedJob) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  EXPECT_THROW(sim.runJob(193, [](mpi::MpiContext&) {}), ContractError);
}

TEST(ClusterSim, PeakGflopsScalesWithNodes) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  const auto r2 = sim.runJob(2, [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(0.01);
  });
  const auto r8 = sim.runJob(8, [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(0.01);
  });
  EXPECT_NEAR(r8.peakGflops / r2.peakGflops, 4.0, 1e-9);
  EXPECT_NEAR(r2.peakGflops, 2.0 * 2, 1e-9);  // 2 GFLOPS per Tegra2 node
}

TEST(ClusterSim, SmallHplRunsAndReportsEfficiency) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  const JobResult result = apps::HplBenchmark::run(sim, 2, 0.05);
  EXPECT_GT(result.gflops, 0.0);
  EXPECT_GT(result.efficiency(), 0.2);
  EXPECT_LT(result.efficiency(), 0.7);
  EXPECT_GT(result.mflopsPerWatt, 20.0);
  EXPECT_LT(result.mflopsPerWatt, 400.0);
}

TEST(ClusterSim, HydroStrongScalingImprovesWallclock) {
  ClusterSimulation sim(ClusterSpec::tibidabo());
  apps::HydroBenchmark::Params params;
  params.nx = 512;
  params.ny = 512;
  params.steps = 3;
  const auto r2 = sim.runJob(2, apps::HydroBenchmark::rankBody(params));
  const auto r8 = sim.runJob(8, apps::HydroBenchmark::rankBody(params));
  EXPECT_LT(r8.wallClockSeconds, r2.wallClockSeconds);
  // ...but sublinearly (halo + allreduce overhead).
  EXPECT_GT(r8.wallClockSeconds, r2.wallClockSeconds / 4.0 * 0.8);
}

TEST(ClusterSim, AutoFiberStackBytesProbesAndSizes) {
  const ClusterSpec spec = ClusterSpec::tibidabo();
  const auto body = [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(1e-6);
    ctx.allreduceSum(static_cast<double>(ctx.rank()));
  };
  // Thread backend: no stack telemetry, so the helper must say "keep the
  // default" rather than inventing a size.
  {
    sim::ScopedExecBackend scoped(sim::ExecBackend::Thread);
    JobResult probeResult;
    EXPECT_EQ(autoFiberStackBytes(spec, 4, body, &probeResult), 0u);
    EXPECT_GT(probeResult.stats.messageCount, 0u);  // the probe really ran
  }
  // Fiber backend: a page-granular 2x-high-water recommendation, and the
  // sweep actually runs on stacks of that size.
  sim::ScopedExecBackend scoped(sim::ExecBackend::Fiber);
  JobResult probeResult;
  const std::size_t sized = autoFiberStackBytes(spec, 4, body, &probeResult);
  if (probeResult.stats.engine.fiberStackBytes == 0)
    GTEST_SKIP() << "fiber backend unavailable (sanitizer fallback)";
  ASSERT_GE(sized, sim::kMinFiberStackBytes);
  EXPECT_EQ(sized % sim::pageBytes(), 0u);
  EXPECT_EQ(sized, sim::recommendedStackBytes(
                       probeResult.stats.engine.stackHighWaterBytes));
  ClusterSimulation sweep(spec);
  JobOptions options;
  options.fiberStackBytes = sized;
  const JobResult swept = sweep.runJob(4, body, options);
  EXPECT_EQ(swept.stats.engine.fiberStackBytes, sized);
  // Identical simulated results on auto-sized stacks.
  const JobResult reference = ClusterSimulation(spec).runJob(4, body);
  EXPECT_DOUBLE_EQ(swept.wallClockSeconds, reference.wallClockSeconds);
}

TEST(ClusterSim, ArndaleClusterUsesUsbNic) {
  const ClusterSpec spec = ClusterSpec::arndaleCluster(8);
  EXPECT_EQ(spec.nodePlatform.nicAttachment, arch::NicAttachment::Usb3);
  ClusterSimulation sim(spec);
  const auto result = sim.runJob(2, [](mpi::MpiContext& ctx) {
    if (ctx.rank() == 0) ctx.send(2, 1, 64);  // rank 2 = node 1
    if (ctx.rank() == 2) ctx.recv(0, 1);
  });
  EXPECT_GT(result.wallClockSeconds, 80e-6);  // USB-laden small message
}

}  // namespace
}  // namespace tibsim::cluster
