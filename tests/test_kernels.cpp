// Tests for the Table-2 micro-kernel suite: every kernel verifies in both
// serial and parallel variants across sizes, profiles are sane, and the
// registry round-trips.

#include <gtest/gtest.h>

#include <set>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::kernels {
namespace {

std::size_t sizeFor(const std::string& tag, int scale) {
  // Kernel-appropriate problem sizes (n is kernel-specific).
  if (tag == "dmmm") return scale == 0 ? 24 : 56;
  if (tag == "3dstc") return scale == 0 ? 12 : 24;
  if (tag == "2dcon") return scale == 0 ? 32 : 96;
  if (tag == "fft") return scale == 0 ? 256 : 4096;
  if (tag == "nbody") return scale == 0 ? 48 : 160;
  if (tag == "amcd") return scale == 0 ? 20000 : 120000;
  if (tag == "spvm") return scale == 0 ? 64 : 400;
  return scale == 0 ? 1000 : 20000;  // vector-shaped kernels
}

TEST(Suite, HasElevenKernelsInTableOrder) {
  const auto& tags = suiteTags();
  ASSERT_EQ(tags.size(), 11u);
  EXPECT_EQ(tags.front(), "vecop");
  EXPECT_EQ(tags.back(), "spvm");
  const auto suite = makeSuite();
  ASSERT_EQ(suite.size(), 11u);
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(suite[i]->tag(), tags[i]);
}

TEST(Suite, UnknownTagThrows) {
  EXPECT_THROW(makeKernel("nosuch"), ContractError);
  EXPECT_THROW(referenceProfileFor("nosuch"), ContractError);
}

TEST(Suite, NamesAndPropertiesNonEmpty) {
  for (const auto& kernel : makeSuite()) {
    EXPECT_FALSE(kernel->fullName().empty()) << kernel->tag();
    EXPECT_FALSE(kernel->properties().empty()) << kernel->tag();
  }
}

TEST(Suite, ReferenceProfilesAreSane) {
  for (const auto& tag : suiteTags()) {
    const auto profile = referenceProfileFor(tag);
    EXPECT_GT(profile.flops, 0.0) << tag;
    EXPECT_GE(profile.bytes, 0.0) << tag;
    EXPECT_GT(profile.computeEfficiency, 0.0) << tag;
    EXPECT_LE(profile.computeEfficiency, 1.0) << tag;
    EXPECT_GT(profile.parallelFraction, 0.5) << tag;
    EXPECT_LE(profile.parallelFraction, 1.0) << tag;
    EXPECT_GE(profile.loadImbalance, 0.0) << tag;
  }
}

TEST(Suite, SpvmIsTheImbalancedKernel) {
  EXPECT_GT(referenceProfileFor("spvm").loadImbalance, 0.1);
  EXPECT_DOUBLE_EQ(referenceProfileFor("vecop").loadImbalance, 0.0);
}

TEST(Suite, RunBeforeSetupThrows) {
  for (const auto& tag : suiteTags()) {
    const auto kernel = makeKernel(tag);
    EXPECT_THROW(kernel->runSerial(), ContractError) << tag;
  }
}

// Parameterised: every kernel x {serial, parallel} x {small, medium} must
// run and verify.
class KernelCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, bool, int>> {};

TEST_P(KernelCorrectness, RunsAndVerifies) {
  const auto& [tag, parallel, scale] = GetParam();
  const auto kernel = makeKernel(tag);
  kernel->setup(sizeFor(tag, scale), /*seed=*/42 + scale);
  if (parallel) {
    ThreadPool pool(3);
    kernel->runParallel(pool);
  } else {
    kernel->runSerial();
  }
  EXPECT_TRUE(kernel->verify()) << tag << (parallel ? " parallel" : " serial");
  const auto profile = kernel->currentProfile();
  EXPECT_GT(profile.flops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelCorrectness,
    ::testing::Combine(::testing::ValuesIn(suiteTags()),
                       ::testing::Bool(), ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<KernelCorrectness::ParamType>& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) ? "_par" : "_ser") +
             (std::get<2>(info.param) == 0 ? "_small" : "_medium");
    });

TEST(KernelRepeatability, SerialAndParallelAgree) {
  // For deterministic kernels the two variants must produce identical
  // verifiable state (checked through verify(), already covered) and for
  // reduction-style kernels results must agree within FP reassociation.
  ThreadPool pool(4);
  auto serial = makeKernel("red");
  auto parallel = makeKernel("red");
  serial->setup(50000, 7);
  parallel->setup(50000, 7);
  serial->runSerial();
  parallel->runParallel(pool);
  EXPECT_TRUE(serial->verify());
  EXPECT_TRUE(parallel->verify());
}

TEST(KernelRepeatability, ReRunningKeepsVerifying) {
  ThreadPool pool(2);
  auto kernel = makeKernel("msort");
  kernel->setup(5000, 3);
  for (int i = 0; i < 3; ++i) {
    kernel->runSerial();
    EXPECT_TRUE(kernel->verify());
    kernel->runParallel(pool);
    EXPECT_TRUE(kernel->verify());
  }
}

// Randomised property sweep: every kernel must verify for many seeds (the
// inputs are random; a verification that only works for one seed would be
// a coincidence, not an invariant).
class KernelSeedSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(KernelSeedSweep, VerifiesForEverySeed) {
  const auto& [tag, seed] = GetParam();
  const auto kernel = makeKernel(tag);
  kernel->setup(sizeFor(tag, 0), static_cast<std::uint64_t>(seed) * 7919);
  kernel->runSerial();
  EXPECT_TRUE(kernel->verify()) << tag << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, KernelSeedSweep,
    ::testing::Combine(::testing::ValuesIn(suiteTags()),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<KernelSeedSweep::ParamType>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Fft, RejectsNonPowerOfTwo) {
  auto kernel = makeKernel("fft");
  EXPECT_THROW(kernel->setup(1000, 1), ContractError);
}

TEST(Dmmm, ProfileCountsGemmFlops) {
  Dmmm dmmm;
  dmmm.setup(64, 1);
  EXPECT_NEAR(dmmm.currentProfile().flops, 2.0 * 64 * 64 * 64, 1.0);
}

TEST(NBody, ProfileQuadratic) {
  NBody nbody;
  nbody.setup(100, 1);
  EXPECT_NEAR(nbody.currentProfile().flops, 20.0 * 100 * 100, 1.0);
}

TEST(Histogram, CountsPreserved) {
  Histogram hist;
  hist.setup(20000, 9);
  hist.runSerial();
  ASSERT_TRUE(hist.verify());
  ThreadPool pool(4);
  hist.runParallel(pool);
  EXPECT_TRUE(hist.verify());
}

TEST(Amcd, EstimatesSecondMomentOfNormal) {
  Amcd amcd;
  amcd.setup(400000, 13);
  amcd.runSerial();
  EXPECT_TRUE(amcd.verify());
}

}  // namespace
}  // namespace tibsim::kernels
