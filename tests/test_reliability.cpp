// Tests for the Section 6.3 DRAM reliability model.

#include <gtest/gtest.h>

#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/reliability/dram_errors.hpp"

namespace tibsim::reliability {
namespace {

TEST(DramErrors, PaperEstimateThirtyPercentDaily) {
  // "these figures suggest that a 1,500 node system, with 2 DIMMs per node,
  //  has a 30% error probability on any given day"
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.045;  // the paper's arithmetic
  model.dimmsPerNode = 2;
  const double p = model.systemDailyErrorProbability(1500);
  EXPECT_GT(p, 0.20);
  EXPECT_LT(p, 0.45);
}

TEST(DramErrors, BandEndsBracketThePaperEstimate) {
  DramErrorModel low;
  low.dimmAnnualErrorProbability = 0.04;
  DramErrorModel high;
  high.dimmAnnualErrorProbability = 0.20;
  EXPECT_LT(low.systemDailyErrorProbability(1500), 0.30);
  EXPECT_GT(high.systemDailyErrorProbability(1500), 0.30);
}

TEST(DramErrors, DailyProbabilityConsistentWithAnnual) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.12;
  const double pDay = model.dimmDailyErrorProbability();
  // Compounding the daily probability over a year returns the annual one.
  EXPECT_NEAR(1.0 - std::pow(1.0 - pDay, 365.0), 0.12, 1e-9);
}

TEST(DramErrors, MonteCarloMatchesClosedForm) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.12;
  const double analytic = model.systemDailyErrorProbability(200);
  const double mc = model.monteCarloDailyErrorProbability(200, 4000, 99);
  EXPECT_NEAR(mc, analytic, 0.03);
}

TEST(DramErrors, MonotonicInNodes) {
  DramErrorModel model;
  double prev = 0.0;
  for (int nodes : {10, 100, 500, 1500, 5000}) {
    const double p = model.systemDailyErrorProbability(nodes);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(DramErrors, ExpectedErrorsScaleLinearly) {
  DramErrorModel model;
  EXPECT_NEAR(model.expectedErrorsPerDay(2000),
              2.0 * model.expectedErrorsPerDay(1000), 1e-12);
}

TEST(DramErrors, JobSurvivalDropsWithDurationAndScale) {
  DramErrorModel model;
  const double shortSmall = model.jobSurvivalProbability(100, 1.0);
  const double longSmall = model.jobSurvivalProbability(100, 24.0);
  const double longBig = model.jobSurvivalProbability(1500, 24.0);
  EXPECT_GT(shortSmall, longSmall);
  EXPECT_GT(longSmall, longBig);
  EXPECT_GT(longBig, 0.0);
  EXPECT_LT(shortSmall, 1.0);
}

TEST(DramErrors, CheckpointThroughputTradeoff) {
  DramErrorModel model;
  // More frequent checkpoints waste more time writing but lose less work;
  // throughput must be < 1 and the model must see both effects.
  const double tShort = model.effectiveThroughput(1500, 0.5, 0.05);
  const double tLong = model.effectiveThroughput(1500, 48.0, 0.05);
  EXPECT_LT(tShort, 1.0);
  EXPECT_LT(tLong, 1.0);
  EXPECT_GT(tShort, 0.5);
  // Very long intervals on a big machine lose a lot to rework.
  EXPECT_LT(tLong, tShort);
}

TEST(DramErrors, InvalidInputsRejected) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 1.5;
  EXPECT_THROW(model.dimmDailyErrorProbability(), ContractError);
  DramErrorModel ok;
  EXPECT_THROW(ok.jobSurvivalProbability(10, 0.0), ContractError);
}

}  // namespace
}  // namespace tibsim::reliability
