// Tests for the Section 6.3 DRAM reliability model and the fault-injection
// harness that drives its bit flips into a live verified MPI run.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/reliability/dram_errors.hpp"
#include "tibsim/reliability/fault_injection.hpp"

namespace tibsim::reliability {
namespace {

TEST(DramErrors, PaperEstimateThirtyPercentDaily) {
  // "these figures suggest that a 1,500 node system, with 2 DIMMs per node,
  //  has a 30% error probability on any given day"
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.045;  // the paper's arithmetic
  model.dimmsPerNode = 2;
  const double p = model.systemDailyErrorProbability(1500);
  EXPECT_GT(p, 0.20);
  EXPECT_LT(p, 0.45);
}

TEST(DramErrors, BandEndsBracketThePaperEstimate) {
  DramErrorModel low;
  low.dimmAnnualErrorProbability = 0.04;
  DramErrorModel high;
  high.dimmAnnualErrorProbability = 0.20;
  EXPECT_LT(low.systemDailyErrorProbability(1500), 0.30);
  EXPECT_GT(high.systemDailyErrorProbability(1500), 0.30);
}

TEST(DramErrors, DailyProbabilityConsistentWithAnnual) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.12;
  const double pDay = model.dimmDailyErrorProbability();
  // Compounding the daily probability over a year returns the annual one.
  EXPECT_NEAR(1.0 - std::pow(1.0 - pDay, 365.0), 0.12, 1e-9);
}

TEST(DramErrors, MonteCarloMatchesClosedForm) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 0.12;
  const double analytic = model.systemDailyErrorProbability(200);
  const double mc = model.monteCarloDailyErrorProbability(200, 4000, 99);
  EXPECT_NEAR(mc, analytic, 0.03);
}

TEST(DramErrors, MonotonicInNodes) {
  DramErrorModel model;
  double prev = 0.0;
  for (int nodes : {10, 100, 500, 1500, 5000}) {
    const double p = model.systemDailyErrorProbability(nodes);
    EXPECT_GT(p, prev);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
}

TEST(DramErrors, ExpectedErrorsScaleLinearly) {
  DramErrorModel model;
  EXPECT_NEAR(model.expectedErrorsPerDay(2000),
              2.0 * model.expectedErrorsPerDay(1000), 1e-12);
}

TEST(DramErrors, JobSurvivalDropsWithDurationAndScale) {
  DramErrorModel model;
  const double shortSmall = model.jobSurvivalProbability(100, 1.0);
  const double longSmall = model.jobSurvivalProbability(100, 24.0);
  const double longBig = model.jobSurvivalProbability(1500, 24.0);
  EXPECT_GT(shortSmall, longSmall);
  EXPECT_GT(longSmall, longBig);
  EXPECT_GT(longBig, 0.0);
  EXPECT_LT(shortSmall, 1.0);
}

TEST(DramErrors, CheckpointThroughputTradeoff) {
  DramErrorModel model;
  // More frequent checkpoints waste more time writing but lose less work;
  // throughput must be < 1 and the model must see both effects.
  const double tShort = model.effectiveThroughput(1500, 0.5, 0.05);
  const double tLong = model.effectiveThroughput(1500, 48.0, 0.05);
  EXPECT_LT(tShort, 1.0);
  EXPECT_LT(tLong, 1.0);
  EXPECT_GT(tShort, 0.5);
  // Very long intervals on a big machine lose a lot to rework.
  EXPECT_LT(tLong, tShort);
}

TEST(DramErrors, InvalidInputsRejected) {
  DramErrorModel model;
  model.dimmAnnualErrorProbability = 1.5;
  EXPECT_THROW(model.dimmDailyErrorProbability(), ContractError);
  DramErrorModel ok;
  EXPECT_THROW(ok.jobSurvivalProbability(10, 0.0), ContractError);
}

// ---------------------------------------------------------------------------
// Fault injection into a verified collective run (ROADMAP 6.3)
// ---------------------------------------------------------------------------

mpi::WorldConfig faultDemoConfig(int shards = 1) {
  mpi::WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = units::ghz(1.0);
  cfg.ranksPerNode = 1;
  cfg.topology.nodesPerLeafSwitch = 2;
  cfg.simShards = shards;
  return cfg;
}

TEST(FaultInjection, PlanIsDeterministicAndInBounds) {
  const DramErrorModel model;
  const FaultPlan a = planCollectiveFault(model, 8, 6, 42);
  const FaultPlan b = planCollectiveFault(model, 8, 6, 42);
  EXPECT_EQ(a.victimRank, b.victimRank);
  EXPECT_EQ(a.victimStep, b.victimStep);
  EXPECT_GE(a.victimRank, 0);
  EXPECT_LT(a.victimRank, 8);
  EXPECT_GE(a.victimStep, 1);  // never step 0: a clean prefix first
  EXPECT_LT(a.victimStep, 6);
  EXPECT_NEAR(a.dailyErrorProbability,
              model.systemDailyErrorProbability(8), 1e-12);
  // A different seed must eventually plan a different strike.
  bool varied = false;
  for (std::uint64_t seed = 0; seed < 16 && !varied; ++seed) {
    const FaultPlan c = planCollectiveFault(model, 8, 6, seed);
    varied = c.victimRank != a.victimRank || c.victimStep != a.victimStep;
  }
  EXPECT_TRUE(varied);
}

TEST(FaultInjection, BitFlipSurfacesAsCollectiveMismatch) {
  const FaultPlan plan = planCollectiveFault(DramErrorModel{}, 6, 5, 42);
  const std::string report =
      runCollectiveFaultDemo(faultDemoConfig(), 6, 5, plan);
  ASSERT_FALSE(report.empty()) << "fault run completed without a report";
  EXPECT_EQ(report.rfind("collective mismatch on comm 0 at t=", 0), 0u)
      << report;
  // The witness names both sides of the divergence: the converged-vote
  // sum against the peers' residual max.
  EXPECT_NE(report.find("op=max"), std::string::npos) << report;
  EXPECT_NE(report.find("op=sum"), std::string::npos) << report;
  EXPECT_NE(report.find("every rank of a communicator must run the same "
                        "collective sequence"),
            std::string::npos)
      << report;
}

TEST(FaultInjection, MismatchReportIsByteIdenticalAcrossShards) {
  const FaultPlan plan = planCollectiveFault(DramErrorModel{}, 6, 5, 42);
  const std::string base =
      runCollectiveFaultDemo(faultDemoConfig(1), 6, 5, plan);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(runCollectiveFaultDemo(faultDemoConfig(2), 6, 5, plan), base);
  EXPECT_EQ(runCollectiveFaultDemo(faultDemoConfig(3), 6, 5, plan), base);
}

}  // namespace
}  // namespace tibsim::reliability
