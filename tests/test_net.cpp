// Tests for the protocol-stack and fabric models (Section 4.1 / Figure 7).

#include <gtest/gtest.h>

#include <algorithm>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/net/fabric.hpp"
#include "tibsim/net/protocol.hpp"

namespace tibsim::net {
namespace {

using namespace units;
using arch::PlatformRegistry;

// ---- Protocol model properties --------------------------------------------

TEST(Protocol, OpenMxAlwaysFasterThanTcp) {
  for (const auto& platform :
       {PlatformRegistry::tegra2(), PlatformRegistry::exynos5250()}) {
    const ProtocolModel tcp(Protocol::TcpIp, platform,
                            platform.maxFrequencyHz());
    const ProtocolModel omx(Protocol::OpenMx, platform,
                            platform.maxFrequencyHz());
    for (std::size_t bytes : {std::size_t{0}, std::size_t{64},
                              std::size_t{1024}, std::size_t{1} << 20}) {
      EXPECT_LT(omx.pingPongLatency(bytes), tcp.pingPongLatency(bytes))
          << platform.shortName << " bytes=" << bytes;
    }
    EXPECT_GT(omx.effectiveBandwidth(1 << 22),
              tcp.effectiveBandwidth(1 << 22))
        << platform.shortName;
  }
}

TEST(Protocol, LatencyMonotonicInMessageSize) {
  const auto platform = PlatformRegistry::tegra2();
  for (Protocol proto : {Protocol::TcpIp, Protocol::OpenMx}) {
    const ProtocolModel model(proto, platform, ghz(1.0));
    double prev = 0.0;
    for (std::size_t bytes = 0; bytes <= 1 << 20;
         bytes = bytes == 0 ? 1 : bytes * 4) {
      const double latency = model.pingPongLatency(bytes);
      EXPECT_GE(latency, prev) << toString(proto) << " " << bytes;
      prev = latency;
    }
  }
}

TEST(Protocol, BandwidthMonotonicInMessageSize) {
  const auto platform = PlatformRegistry::tegra2();
  const ProtocolModel model(Protocol::OpenMx, platform, ghz(1.0));
  double prev = 0.0;
  for (std::size_t bytes = 64; bytes <= (1 << 24); bytes *= 4) {
    const double bw = model.effectiveBandwidth(bytes);
    EXPECT_GE(bw, prev * 0.98) << bytes;  // allow rendezvous-handshake dip
    prev = bw;
  }
}

TEST(Protocol, HigherFrequencyReducesLatency) {
  const auto platform = PlatformRegistry::exynos5250();
  for (Protocol proto : {Protocol::TcpIp, Protocol::OpenMx}) {
    const ProtocolModel slow(proto, platform, ghz(1.0));
    const ProtocolModel fast(proto, platform, ghz(1.4));
    EXPECT_LT(fast.pingPongLatency(1), slow.pingPongLatency(1));
    // ...but only partially: USB hardware cost does not scale with f.
    const double ratio =
        fast.pingPongLatency(1) / slow.pingPongLatency(1);
    EXPECT_GT(ratio, 0.8);  // paper: ~10 % reduction for 1.0 -> 1.4 GHz
    EXPECT_LT(ratio, 0.97);
  }
}

TEST(Protocol, BandwidthNeverExceedsLineRate) {
  for (const auto& platform : PlatformRegistry::evaluated()) {
    for (Protocol proto : {Protocol::TcpIp, Protocol::OpenMx}) {
      const ProtocolModel model(proto, platform, platform.maxFrequencyHz());
      for (std::size_t bytes = 1; bytes <= (1 << 24); bytes *= 16) {
        EXPECT_LE(model.effectiveBandwidth(bytes),
                  platform.nicLinkRateBytesPerS)
            << platform.shortName << " " << toString(proto);
      }
    }
  }
}

TEST(Protocol, RendezvousOnlyForOpenMxLargeMessages) {
  const auto platform = PlatformRegistry::tegra2();
  const ProtocolModel omx(Protocol::OpenMx, platform, ghz(1.0));
  const ProtocolModel tcp(Protocol::TcpIp, platform, ghz(1.0));
  EXPECT_FALSE(omx.messageCosts(1024).rendezvous);
  EXPECT_TRUE(omx.messageCosts(32 * 1024).rendezvous);
  EXPECT_FALSE(tcp.messageCosts(1 << 20).rendezvous);
}

TEST(Protocol, UsbAttachmentCostsMoreThanPcie) {
  // Same protocol, same core frequency: the Arndale (USB NIC) must show
  // higher latency than the SECO board (PCIe NIC) even though the A15 core
  // runs the software stack faster — the paper's headline Fig. 7 finding.
  const auto tegra2 = PlatformRegistry::tegra2();
  const auto exynos = PlatformRegistry::exynos5250();
  for (Protocol proto : {Protocol::TcpIp, Protocol::OpenMx}) {
    const ProtocolModel pcie(proto, tegra2, ghz(1.0));
    const ProtocolModel usb(proto, exynos, ghz(1.0));
    EXPECT_GT(usb.pingPongLatency(1), pcie.pingPongLatency(1))
        << toString(proto);
  }
}

TEST(Protocol, LatencyPenaltyScalesWithCpuPerformance) {
  // EEE study anchor: 100 us on a Sandy-Bridge-class core => ~+90 %.
  EXPECT_NEAR(latencyExecutionTimePenalty(100e-6, 1.0), 0.90, 1e-9);
  // A 3x slower core sees a proportionally smaller relative penalty.
  EXPECT_NEAR(latencyExecutionTimePenalty(100e-6, 1.0 / 3.0), 0.30, 1e-9);
  EXPECT_THROW(latencyExecutionTimePenalty(-1.0, 1.0), ContractError);
}

// ---- Fabric ----------------------------------------------------------------

TopologySpec smallTopo(int nodes) {
  TopologySpec spec;
  spec.nodes = nodes;
  spec.nodesPerLeafSwitch = 4;
  spec.linkRateBytesPerS = 125e6;
  spec.bisectionBytesPerS = 1e9;
  spec.switchLatency = 2e-6;
  return spec;
}

TEST(Fabric, HopCounts) {
  Fabric fabric(smallTopo(16));
  EXPECT_EQ(fabric.hopCount(0, 0), 0);
  EXPECT_EQ(fabric.hopCount(0, 3), 1);   // same leaf
  EXPECT_EQ(fabric.hopCount(0, 4), 3);   // across the core
  EXPECT_EQ(fabric.hopCount(15, 12), 1);
  EXPECT_TRUE(fabric.sameLeaf(0, 3));
  EXPECT_FALSE(fabric.sameLeaf(3, 4));
}

TEST(Fabric, WireTimeMatchesRate) {
  Fabric fabric(smallTopo(8));
  // 125 MB over a 125 MB/s link = 1 s + switch latency.
  const double arrival = fabric.scheduleWire(0, 1, 125e6, 0.0);
  EXPECT_NEAR(arrival, 1.0 + 2e-6, 1e-6);
}

TEST(Fabric, BackToBackTransfersQueue) {
  Fabric fabric(smallTopo(8));
  const double first = fabric.scheduleWire(0, 1, 125e6, 0.0);
  const double second = fabric.scheduleWire(0, 1, 125e6, 0.0);
  EXPECT_NEAR(second - first, 1.0, 1e-6);  // serialised on the uplink
  EXPECT_GT(fabric.totalQueueingSeconds(), 0.9);
}

TEST(Fabric, DistinctPairsDoNotContend) {
  Fabric fabric(smallTopo(8));
  const double a = fabric.scheduleWire(0, 1, 125e6, 0.0);
  const double b = fabric.scheduleWire(2, 3, 125e6, 0.0);
  EXPECT_NEAR(a, b, 1e-9);
  EXPECT_NEAR(fabric.totalQueueingSeconds(), 0.0, 1e-9);
}

TEST(Fabric, CoreCapacityLimitsCrossLeafTraffic) {
  // 16 concurrent cross-leaf transfers of 125 MB each: the 1 GB/s core can
  // carry only 8 links' worth, so the last arrival is pushed out ~2x.
  Fabric fabric(smallTopo(64));
  double lastArrival = 0.0;
  for (int i = 0; i < 16; ++i) {
    lastArrival = std::max(
        lastArrival, fabric.scheduleWire(i, 32 + i, 125e6, 0.0));
  }
  EXPECT_GT(lastArrival, 1.8);
  // Within-leaf traffic is not affected by the core.
  Fabric fabric2(smallTopo(64));
  double lastLocal = 0.0;
  for (int i = 0; i < 2; ++i)
    lastLocal =
        std::max(lastLocal, fabric2.scheduleWire(i, 2 + i, 125e6, 0.0));
  EXPECT_LT(lastLocal, 1.1);
}

TEST(Fabric, AccountsTrafficTotals) {
  Fabric fabric(smallTopo(8));
  fabric.scheduleWire(0, 1, 1000.0, 0.0);
  fabric.scheduleWire(1, 0, 500.0, 0.0);
  EXPECT_DOUBLE_EQ(fabric.totalWireBytes(), 1500.0);
  EXPECT_EQ(fabric.transferCount(), 2u);
}

TEST(Fabric, RejectsInvalidEndpoints) {
  Fabric fabric(smallTopo(4));
  EXPECT_THROW(fabric.scheduleWire(0, 4, 10, 0.0), ContractError);
  EXPECT_THROW(fabric.scheduleWire(2, 2, 10, 0.0), ContractError);
}

}  // namespace
}  // namespace tibsim::net
