// Tests for the discrete-event engine: ordering, process semantics,
// determinism, teardown, exception capture, engine stats. The whole suite
// is parameterised over both ExecutionContext backends — every behaviour
// here is backend-independent by contract.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "tibsim/common/assert.hpp"
#include "tibsim/sim/shard_scheduler.hpp"
#include "tibsim/sim/simulation.hpp"

namespace tibsim::sim {
namespace {

class SimulationTest : public ::testing::TestWithParam<ExecBackend> {
 protected:
  // Simulation() and WorldConfig pick up the process-wide default; pinning
  // it per test keeps the bodies identical to non-parameterised code.
  ScopedExecBackend scoped_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Backends, SimulationTest,
                         ::testing::Values(ExecBackend::Fiber,
                                           ExecBackend::Thread),
                         [](const auto& paramInfo) {
                           return std::string(toString(paramInfo.param));
                         });

TEST_P(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.scheduleAt(3.0, [&] { order.push_back(3); });
  sim.scheduleAt(1.0, [&] { order.push_back(1); });
  sim.scheduleAt(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST_P(SimulationTest, EqualTimestampsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.scheduleAt(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_P(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.scheduleAt(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(1.0, [] {}), ContractError);
}

TEST_P(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  sim.scheduleAt(1.0, [&] {
    ++fired;
    sim.scheduleIn(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST_P(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.scheduleAt(1.0, [&] { ++fired; });
  sim.scheduleAt(10.0, [&] { ++fired; });
  sim.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST_P(SimulationTest, BackendIsTheRequestedOne) {
  Simulation sim;
  EXPECT_EQ(sim.backend(), GetParam());
  Simulation explicitSim(GetParam());
  EXPECT_EQ(explicitSim.backend(), GetParam());
}

TEST_P(SimulationTest, DelayAdvancesSimTime) {
  Simulation sim;
  double observed = -1.0;
  sim.spawn("p", [&](Process& p) {
    p.delay(2.5);
    observed = p.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_EQ(sim.liveProcessCount(), 0u);
}

TEST_P(SimulationTest, MultipleProcessesInterleaveByTime) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("a", [&](Process& p) {
    p.delay(1.0);
    log.push_back("a1");
    p.delay(2.0);  // wakes at 3.0
    log.push_back("a3");
  });
  sim.spawn("b", [&](Process& p) {
    p.delay(2.0);
    log.push_back("b2");
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "b2", "a3"}));
}

TEST_P(SimulationTest, SuspendResumeHandshake) {
  Simulation sim;
  std::vector<std::string> log;
  Process* waiterPtr = nullptr;
  auto& waiter = sim.spawn("waiter", [&](Process& p) {
    log.push_back("waiting");
    p.suspend();
    log.push_back("woken at " + std::to_string(static_cast<int>(p.now())));
  });
  waiterPtr = &waiter;
  sim.spawn("waker", [&](Process& p) {
    p.delay(5.0);
    p.simulation().resume(*waiterPtr);
  });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "woken at 5");
}

TEST_P(SimulationTest, StaleWakeupsAreDropped) {
  // Two resumes target the same suspended process; the second must not
  // disturb it after it has moved on into a delay.
  Simulation sim;
  double finishTime = 0.0;
  auto& target = sim.spawn("t", [&](Process& p) {
    p.suspend();          // woken at t=1 by first resume
    p.delay(10.0);        // a stale resume at t=1 must not cut this short
    finishTime = p.now();
  });
  sim.scheduleAt(1.0, [&] {
    sim.resume(target);
    sim.resume(target);  // stale duplicate
  });
  sim.run();
  EXPECT_DOUBLE_EQ(finishTime, 11.0);
}

TEST_P(SimulationTest, NegativeDelayThrows) {
  Simulation sim;
  sim.spawn("p", [&](Process& p) { p.delay(-1.0); });
  sim.run();
  // The exception is captured on the process and visible afterwards.
  std::size_t withException = 0;
  // run() drained; the process finished with a stored exception.
  EXPECT_EQ(sim.liveProcessCount(), 0u);
  (void)withException;
}

TEST_P(SimulationTest, ExceptionsAreCaptured) {
  Simulation sim;
  auto& p = sim.spawn("thrower", [](Process&) {
    throw std::runtime_error("boom");
  });
  sim.run();
  ASSERT_NE(p.exception(), nullptr);
  EXPECT_THROW(std::rethrow_exception(p.exception()), std::runtime_error);
}

TEST_P(SimulationTest, TeardownWithBlockedProcessesDoesNotHang) {
  auto sim = std::make_unique<Simulation>();
  sim->spawn("stuck", [](Process& p) { p.suspend(); });
  sim->run();  // drains with the process still suspended
  EXPECT_EQ(sim->liveProcessCount(), 1u);
  sim.reset();  // must unwind and join cleanly
  SUCCEED();
}

// Satellite regression: destroying a Simulation while a process is blocked
// in delay() must unwind the process stack via ProcessKilled so that local
// destructors run (the body's frames own real resources: payload buffers,
// trace spans, RAII guards).
TEST_P(SimulationTest, KillRunsDestructorsWhileBlockedInDelay) {
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) {}
    ~Sentinel() { ++*counter; }
  };
  int destroyed = 0;
  auto sim = std::make_unique<Simulation>();
  sim->spawn("blocked-in-delay", [&](Process& p) {
    Sentinel outer(&destroyed);
    {
      Sentinel inner(&destroyed);
      p.delay(100.0);  // the wake-up event is beyond the runUntil deadline
    }
    ADD_FAILURE() << "body must not resume after teardown";
  });
  sim->runUntil(1.0);  // starts the body, which parks inside delay(100)
  ASSERT_EQ(destroyed, 0);
  ASSERT_EQ(sim->liveProcessCount(), 1u);
  sim.reset();  // ProcessKilled unwinds both frames
  EXPECT_EQ(destroyed, 2);
}

// Same teardown contract for a recv-style suspension (suspend() with no
// resume scheduled at all — the shape of a rank blocked in MPI recv).
TEST_P(SimulationTest, KillRunsDestructorsWhileSuspended) {
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) {}
    ~Sentinel() { ++*counter; }
  };
  int destroyed = 0;
  auto sim = std::make_unique<Simulation>();
  sim->spawn("blocked-in-recv", [&](Process& p) {
    Sentinel s(&destroyed);
    p.suspend();
    ADD_FAILURE() << "body must not resume after teardown";
  });
  sim->run();
  ASSERT_EQ(destroyed, 0);
  sim.reset();
  EXPECT_EQ(destroyed, 1);
}

// A process exception recorded during the run must survive the teardown of
// other still-blocked processes and be rethrowable on the host thread.
TEST_P(SimulationTest, ExceptionRethrowsOnHostAfterTeardown) {
  std::exception_ptr captured;
  {
    Simulation sim;
    auto& thrower = sim.spawn("thrower", [](Process& p) {
      p.delay(0.5);
      throw std::runtime_error("boom at t=0.5");
    });
    sim.spawn("stuck", [](Process& p) { p.suspend(); });
    sim.run();
    ASSERT_NE(thrower.exception(), nullptr);
    captured = thrower.exception();
    EXPECT_EQ(sim.liveProcessCount(), 1u);
  }  // teardown kills "stuck" while captured is still alive
  ASSERT_NE(captured, nullptr);
  EXPECT_THROW(std::rethrow_exception(captured), std::runtime_error);
}

// A process spawned but never started (its start event still queued) must
// tear down cleanly: the kill must not run the body.
TEST_P(SimulationTest, TeardownBeforeFirstDispatchSkipsBody) {
  bool bodyRan = false;
  {
    Simulation sim;
    sim.spawn("never-started", [&](Process&) { bodyRan = true; });
    // No run(): the start event never fires.
  }
  EXPECT_FALSE(bodyRan);
}

TEST_P(SimulationTest, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulation sim;
    std::vector<double> times;
    for (int i = 0; i < 5; ++i) {
      sim.spawn("p" + std::to_string(i), [&times, i](Process& p) {
        p.delay(0.1 * (i + 1));
        times.push_back(p.now());
        p.delay(0.05);
        times.push_back(p.now());
      });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST_P(SimulationTest, ManyProcessesComplete) {
  Simulation sim;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    sim.spawn("p", [&done, i](Process& p) {
      p.delay(0.001 * i);
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 200);
  EXPECT_GE(sim.processedEvents(), 400u);
}

TEST_P(SimulationTest, EngineStatsCountTheMachinery) {
  Simulation sim;
  for (int i = 0; i < 3; ++i) {
    sim.spawn("p" + std::to_string(i), [](Process& p) {
      p.delay(1.0);
      p.delay(1.0);
    });
  }
  sim.run();
  const EngineStats stats = sim.engineStats();
  // 3 start events + 3 x 2 delay wake-ups.
  EXPECT_EQ(stats.eventsDispatched, 9u);
  // Each dispatched event switches into exactly one process here.
  EXPECT_EQ(stats.contextSwitches, 9u);
  EXPECT_EQ(stats.processesSpawned, 3u);
  EXPECT_EQ(stats.peakLiveProcesses, 3u);
  EXPECT_GE(stats.queueHighWater, 3u);
  EXPECT_DOUBLE_EQ(stats.simSeconds, 2.0);
  EXPECT_EQ(sim.processedEvents(), stats.eventsDispatched);
}

// The engine counters are part of the campaign artefacts, so they must be
// identical across backends, not merely "both plausible".
TEST(ExecutionContexts, BackendsProduceIdenticalStatsAndTimes) {
  auto runOnce = [](ExecBackend backend) {
    ScopedExecBackend scoped(backend);
    Simulation sim;
    std::vector<double> times;
    for (int i = 0; i < 8; ++i) {
      sim.spawn("p" + std::to_string(i), [&times, i](Process& p) {
        p.delay(0.01 * (i + 1));
        times.push_back(p.now());
        p.delay(0.02);
        times.push_back(p.now());
      });
    }
    sim.run();
    return std::make_pair(times, sim.engineStats());
  };
  const auto [fiberTimes, fiberStats] = runOnce(ExecBackend::Fiber);
  const auto [threadTimes, threadStats] = runOnce(ExecBackend::Thread);
  EXPECT_EQ(fiberTimes, threadTimes);
  EXPECT_EQ(fiberStats.eventsDispatched, threadStats.eventsDispatched);
  EXPECT_EQ(fiberStats.contextSwitches, threadStats.contextSwitches);
  EXPECT_EQ(fiberStats.processesSpawned, threadStats.processesSpawned);
  EXPECT_EQ(fiberStats.peakLiveProcesses, threadStats.peakLiveProcesses);
  EXPECT_EQ(fiberStats.queueHighWater, threadStats.queueHighWater);
  EXPECT_DOUBLE_EQ(fiberStats.simSeconds, threadStats.simSeconds);
}

TEST(ExecutionContexts, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parseExecBackend("fiber"), ExecBackend::Fiber);
  EXPECT_EQ(parseExecBackend("thread"), ExecBackend::Thread);
  EXPECT_STREQ(toString(ExecBackend::Fiber), "fiber");
  EXPECT_STREQ(toString(ExecBackend::Thread), "thread");
  EXPECT_THROW(parseExecBackend("green-threads"), ContractError);
}

TEST(StackAutoSizing, RecommendedStackBytesIsTwiceHwmPageRounded) {
  const std::size_t page = pageBytes();
  ASSERT_GT(page, 0u);
  // No telemetry -> keep the default.
  EXPECT_EQ(recommendedStackBytes(0), 0u);
  // Tiny high-water marks floor at the minimum usable stack.
  EXPECT_EQ(recommendedStackBytes(1), kMinFiberStackBytes);
  EXPECT_EQ(recommendedStackBytes(kMinFiberStackBytes / 2 - 1),
            kMinFiberStackBytes);
  // Above the floor: 2x the high-water mark, rounded up to a whole page.
  const std::size_t hwm = 5 * page + 123;
  const std::size_t rec = recommendedStackBytes(hwm);
  EXPECT_GE(rec, 2 * hwm);
  EXPECT_LT(rec, 2 * hwm + page);
  EXPECT_EQ(rec % page, 0u);
  // An exact page multiple does not get an extra page.
  EXPECT_EQ(recommendedStackBytes(4 * page), 8 * page);
}

TEST(StackAutoSizing, ProbeTelemetryFeedsARunnableRecommendation) {
  // The probe-then-sweep pattern end-to-end at engine level: measure a
  // workload's stack high-water mark on the fiber backend, then rerun the
  // same workload on stacks sized from the telemetry.
  const auto workload = [](Simulation& sim) {
    for (int i = 0; i < 8; ++i) {
      sim.spawn("p" + std::to_string(i), [](Process& p) {
        volatile char frame[2048];
        frame[0] = 1;
        frame[sizeof(frame) - 1] = 1;
        p.delay(1.0);
      });
    }
    sim.run();
  };
  Simulation probe(ExecBackend::Fiber);
  workload(probe);
  const std::size_t hwm = probe.engineStats().stackHighWaterBytes;
  if (probe.engineStats().fiberStackBytes == 0)
    GTEST_SKIP() << "fiber backend unavailable (sanitizer fallback)";
  ASSERT_GT(hwm, 0u);
  const std::size_t sized = recommendedStackBytes(hwm);
  ASSERT_GE(sized, kMinFiberStackBytes);
  ASSERT_LT(sized, ExecutionContext::defaultStackBytes());
  Simulation sweep(ExecBackend::Fiber, sized);
  workload(sweep);
  EXPECT_EQ(sweep.engineStats().fiberStackBytes, sized);
  EXPECT_LE(sweep.engineStats().stackHighWaterBytes, sized);
}

// Guard-page containment: a fiber that overruns its stack must fault on
// the PROT_NONE guard page (killing the process) instead of silently
// scribbling over a neighbouring fiber's stack.
TEST(FiberGuardPageDeathTest, OverflowFaultsOnGuardPage) {
  {
    const auto probe = ExecutionContext::create(ExecBackend::Fiber);
    if (probe->backend() != ExecBackend::Fiber)
      GTEST_SKIP() << "fiber backend unavailable (sanitizer fallback)";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        struct Overflow {
          // Non-tail recursion (the frame is read after the recursive call)
          // so the compiler cannot collapse it into a loop; noinline keeps
          // each level's 1 KiB frame on the fiber stack.
          __attribute__((noinline)) static int recurse(int depth) {
            volatile char frame[1024];
            frame[0] = static_cast<char>(depth);
            if (depth <= 0) return frame[0];
            const int below = recurse(depth - 1);
            frame[sizeof(frame) - 1] = static_cast<char>(below);
            return frame[0] + frame[sizeof(frame) - 1];
          }
        };
        Simulation sim(ExecBackend::Fiber, kMinFiberStackBytes);
        // 64 x 1 KiB frames overrun the 16 KiB minimum stack well before
        // the recursion bottoms out.
        sim.spawn("overflow", [](Process&) {
          volatile int sink = Overflow::recurse(64);
          (void)sink;
        });
        sim.run();
      },
      "");
}

TEST(ShardScheduler, ChannelPushToTornDownShardIsAContractViolation) {
  // Routing a rank's cross-shard event to a detached engine is a
  // partitioning bug; the channel must reject it loudly, not enqueue into
  // freed state.
  Simulation a;
  Simulation b;
  ShardScheduler sched(1.0e-6);
  sched.addShard(&a);
  const std::size_t victim = sched.addShard(&b);
  sched.channelPush(victim, 0.5e-6, 1, 0, [] {});  // alive: accepted
  sched.teardownShard(victim);
  EXPECT_THROW(sched.channelPush(victim, 1.5e-6, 2, 0, [] {}),
               ContractError);
}

TEST(ShardScheduler, ScopedSimShardsOverrideRestoresPrevious) {
  const int before = defaultSimShards();
  {
    ScopedSimShards scoped(4);
    EXPECT_EQ(defaultSimShards(), 4);
    {
      ScopedSimShards nested(2);
      EXPECT_EQ(defaultSimShards(), 2);
    }
    EXPECT_EQ(defaultSimShards(), 4);
  }
  EXPECT_EQ(defaultSimShards(), before);
}

TEST(ExecutionContexts, ScopedOverrideRestoresPrevious) {
  const ExecBackend before = defaultExecBackend();
  {
    ScopedExecBackend scoped(ExecBackend::Thread);
    EXPECT_EQ(defaultExecBackend(), ExecBackend::Thread);
    {
      ScopedExecBackend nested(ExecBackend::Fiber);
      EXPECT_EQ(defaultExecBackend(), ExecBackend::Fiber);
    }
    EXPECT_EQ(defaultExecBackend(), ExecBackend::Thread);
  }
  EXPECT_EQ(defaultExecBackend(), before);
}

}  // namespace
}  // namespace tibsim::sim
