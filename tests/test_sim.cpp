// Tests for the discrete-event engine: ordering, process semantics,
// determinism, teardown, exception capture.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "tibsim/common/assert.hpp"
#include "tibsim/sim/simulation.hpp"

namespace tibsim::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.scheduleAt(3.0, [&] { order.push_back(3); });
  sim.scheduleAt(1.0, [&] { order.push_back(1); });
  sim.scheduleAt(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimestampsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.scheduleAt(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.scheduleAt(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.scheduleAt(1.0, [] {}), ContractError);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  sim.scheduleAt(1.0, [&] {
    ++fired;
    sim.scheduleIn(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.scheduleAt(1.0, [&] { ++fired; });
  sim.scheduleAt(10.0, [&] { ++fired; });
  sim.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Process, DelayAdvancesSimTime) {
  Simulation sim;
  double observed = -1.0;
  sim.spawn("p", [&](Process& p) {
    p.delay(2.5);
    observed = p.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_EQ(sim.liveProcessCount(), 0u);
}

TEST(Process, MultipleProcessesInterleaveByTime) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("a", [&](Process& p) {
    p.delay(1.0);
    log.push_back("a1");
    p.delay(2.0);  // wakes at 3.0
    log.push_back("a3");
  });
  sim.spawn("b", [&](Process& p) {
    p.delay(2.0);
    log.push_back("b2");
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "b2", "a3"}));
}

TEST(Process, SuspendResumeHandshake) {
  Simulation sim;
  std::vector<std::string> log;
  Process* waiterPtr = nullptr;
  auto& waiter = sim.spawn("waiter", [&](Process& p) {
    log.push_back("waiting");
    p.suspend();
    log.push_back("woken at " + std::to_string(static_cast<int>(p.now())));
  });
  waiterPtr = &waiter;
  sim.spawn("waker", [&](Process& p) {
    p.delay(5.0);
    p.simulation().resume(*waiterPtr);
  });
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "woken at 5");
}

TEST(Process, StaleWakeupsAreDropped) {
  // Two resumes target the same suspended process; the second must not
  // disturb it after it has moved on into a delay.
  Simulation sim;
  double finishTime = 0.0;
  auto& target = sim.spawn("t", [&](Process& p) {
    p.suspend();          // woken at t=1 by first resume
    p.delay(10.0);        // a stale resume at t=1 must not cut this short
    finishTime = p.now();
  });
  sim.scheduleAt(1.0, [&] {
    sim.resume(target);
    sim.resume(target);  // stale duplicate
  });
  sim.run();
  EXPECT_DOUBLE_EQ(finishTime, 11.0);
}

TEST(Process, NegativeDelayThrows) {
  Simulation sim;
  sim.spawn("p", [&](Process& p) { p.delay(-1.0); });
  sim.run();
  // The exception is captured on the process and visible afterwards.
  std::size_t withException = 0;
  // run() drained; the process finished with a stored exception.
  EXPECT_EQ(sim.liveProcessCount(), 0u);
  (void)withException;
}

TEST(Process, ExceptionsAreCaptured) {
  Simulation sim;
  auto& p = sim.spawn("thrower", [](Process&) {
    throw std::runtime_error("boom");
  });
  sim.run();
  ASSERT_NE(p.exception(), nullptr);
  EXPECT_THROW(std::rethrow_exception(p.exception()), std::runtime_error);
}

TEST(Process, TeardownWithBlockedProcessesDoesNotHang) {
  auto sim = std::make_unique<Simulation>();
  sim->spawn("stuck", [](Process& p) { p.suspend(); });
  sim->run();  // drains with the process still suspended
  EXPECT_EQ(sim->liveProcessCount(), 1u);
  sim.reset();  // must unwind and join cleanly
  SUCCEED();
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulation sim;
    std::vector<double> times;
    for (int i = 0; i < 5; ++i) {
      sim.spawn("p" + std::to_string(i), [&times, i](Process& p) {
        p.delay(0.1 * (i + 1));
        times.push_back(p.now());
        p.delay(0.05);
        times.push_back(p.now());
      });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Simulation, ManyProcessesComplete) {
  Simulation sim;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    sim.spawn("p", [&done, i](Process& p) {
      p.delay(0.001 * i);
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 200);
  EXPECT_GE(sim.processedEvents(), 400u);
}

}  // namespace
}  // namespace tibsim::sim
