// Deliberate collective-matching violations: branches on rank-derived
// conditions whose arms reach different collective sequences.
struct Comm {
  int rank() const;
  void barrier();
  void bcast(double v);
  void allreduceSum(double v);
};

void divergentArms(Comm& world) {
  if (world.rank() == 0) {
    world.bcast(1.0);
    world.barrier();
  } else {
    world.barrier();
  }
}

void earlyReturnSkipsCollective(Comm& world) {
  const bool leader = world.rank() == 0;
  if (leader) return;
  world.allreduceSum(2.0);
}
