// Fixture: the observability layer records from inside the event loop, so
// the shard-shared rule covers src/obs/ too — a mutable static ordinal
// races once shard gang threads run windows concurrently.
unsigned long long nextSpanOrdinal() {
  static unsigned long long ordinal = 0;
  return ++ordinal;
}
