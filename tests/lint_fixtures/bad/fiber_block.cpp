// Fixture: fiber-block rule must fire in sim paths (linted as src/sim/...).
#include <chrono>
#include <thread>

void pause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
