// Fixture: header whose include guard pragma is absent from the first
// five lines, so the pragma-once rule must fire.
#include <cstddef>

inline std::size_t answer() { return 42; }
