// Fixture: an unannotated wildcard receive in a sim path (linted as
// src/apps/...) must fire — the reviewer never signed off on the race.
#include <vector>

std::vector<double> drain(int tag) {
  return world.recvDoubles(mpi::kAnySource, tag);
}
