// Fixture: shard-shared must flag raw queue pushes and mutable statics
// outside the engine/channel API.
void leak(Simulation& sim, double t) {
  sim.queue_.push(makeEvent(t));
}

int ticket() {
  static int next = 0;
  return ++next;
}
