// Fixture: wall-clock rule must fire on an unannotated steady_clock read.
#include <chrono>

double hostNow() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
