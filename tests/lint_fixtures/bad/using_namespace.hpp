#pragma once
// Fixture: using-namespace rule must fire on a header-level directive.
#include <string>

using namespace std;

inline string greet() { return "hi"; }
