// Fixture: random-source rule must fire on rand().
#include <cstdlib>

int roll() { return rand() % 6; }
