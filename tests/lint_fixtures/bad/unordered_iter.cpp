// Fixture: unordered-iter rule must fire on range-for over an unordered map.
#include <unordered_map>

int total() {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& kv : table) sum += kv.second;
  for (auto it = table.begin(); it != table.end(); ++it) sum += it->second;
  return sum;
}
