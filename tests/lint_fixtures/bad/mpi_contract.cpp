// Fixture: mpi-contract rule must fire on raw double-sized sends and on
// reinterpret_cast of payload bytes to double.
#include <cstddef>
#include <vector>

struct Ctx {
  unsigned long isend(int, int, std::size_t, const void*);
};

unsigned long shipRaw(Ctx& ctx, const std::vector<double>& data) {
  return ctx.isend(1, 9, data.size() * sizeof(double), data.data());
}

double firstValue(const std::vector<unsigned char>& raw) {
  return *reinterpret_cast<const double*>(raw.data());
}
