// Fixture: pointer-key rule must fire on an address-keyed map.
#include <map>

struct Node;
std::map<Node*, int> order;
