// Fixture: thread-local rule must fire in sim paths.
thread_local int perRankScratch = 0;

int bump() { return ++perRankScratch; }
