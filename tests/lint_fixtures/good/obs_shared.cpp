// Fixture: per-sink member state keeps obs recording shard-safe, and a
// process-wide configuration slot written only from the host thread is
// waived explicitly.
struct Sink {
  unsigned long long recorded = 0;
  void record() { ++recorded; }
};

int defaultMode() {
  static int slot = 0;  // tibsim-lint: allow(shard-shared)
  return slot;
}
