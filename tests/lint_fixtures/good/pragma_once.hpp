#pragma once
// Fixture: the compliant header form.
#include <cstddef>

inline std::size_t answer() { return 42; }
