// Fixture: a file-scope allowlist silences the rule everywhere.
// tibsim-lint: allowfile(unordered-iter)
#include <unordered_map>

int total() {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& kv : table) sum += kv.second;
  return sum;
}
