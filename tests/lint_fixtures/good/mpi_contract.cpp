// Fixture: the compliant form goes through the typed helpers; a deliberate
// raw path carries a per-line waiver.
#include <cstddef>
#include <span>
#include <vector>

struct Ctx {
  void sendDoubles(int, int, std::span<const double>);
  unsigned long isend(int, int, std::size_t, const void*);
};

void shipTyped(Ctx& ctx, const std::vector<double>& data) {
  ctx.sendDoubles(1, 9, data);
}

unsigned long shipWaived(Ctx& ctx, const std::vector<double>& data) {
  return ctx.isend(1, 9, data.size() * sizeof(double), data.data());  // tibsim-lint: allow(mpi-contract)
}
