// Fixture: the waived wildcard (a deliberate self-scheduling master) and
// an explicit (source, tag) receive are both fine; the constant's name in
// a comment (kAnySource) never fires because comments are stripped.
#include <vector>

std::vector<double> next(int worker, int tag) {
  std::vector<double> stolen = world.recvDoubles(
      mpi::kAnySource, tag);  // tibsim-lint: allow(wildcard-recv)
  (void)stolen;
  return world.recvDoubles(worker, tag);
}
