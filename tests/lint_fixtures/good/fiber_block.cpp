// Fixture: the same blocking call outside a sim path is not the rule's
// business (linted as src/core/...), so this file must stay silent.
#include <chrono>
#include <thread>

void pause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
