// Rank-conditional code the collective-match rule must accept: matched
// arm sequences, uniform conditions, membership-scoped communicators, and
// an explicitly waived deliberate asymmetry.
struct Comm {
  int rank() const;
  void barrier();
  void bcast(double v);
  Comm split(int color, int key) const;
};
inline constexpr int kUndefinedColor = -1;

void matchedArms(Comm& world) {
  if (world.rank() == 0) {
    world.bcast(1.0);
    world.barrier();
  } else {
    world.bcast(0.0);
    world.barrier();
  }
}

void uniformCondition(Comm& world, int steps) {
  if (steps > 4) {
    world.barrier();
  }
}

void membershipScoped(Comm& world) {
  const bool leader = world.rank() == 0;
  const Comm leaders =
      world.split(leader ? 0 : kUndefinedColor, world.rank());
  if (leader) {
    leaders.barrier();
  }
}

void waivedAsymmetry(Comm& world) {
  // tibsim-lint: allow(collective-match)
  if (world.rank() == 0) {
    world.barrier();
  }
}
