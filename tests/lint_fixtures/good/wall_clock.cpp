// Fixture: a trailing allow() annotation silences the wall-clock rule.
#include <chrono>

double hostNow() {
  const auto t = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
