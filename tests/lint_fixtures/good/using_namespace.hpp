#pragma once
// Fixture: "using namespace" in comments or string literals must NOT fire;
// the checker sees stripped code only.
#include <string>

inline std::string sample() { return "using namespace std;"; }
