// Fixture: cross-shard work routed through the channel API and immutable
// statics are fine in shardable simulation code.
void deliver(ShardScheduler& sched, double t) {
  sched.channelPush(1, t, 7, 0, noop());
}

int limit() {
  static const int kLimit = 64;
  return kLimit;
}
