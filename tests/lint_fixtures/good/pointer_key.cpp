// Fixture: keying on a stable id is the compliant form.
#include <map>

std::map<int, int> order;  // rank-keyed: deterministic traversal
