// Fixture: a standalone annotation suppresses the next line.
#include <cstdlib>

int roll() {
  // tibsim-lint: allow(random-source)
  return rand() % 6;
}
