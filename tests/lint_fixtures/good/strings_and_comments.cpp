// Fixture: rule patterns inside comments, string literals and raw strings
// must never fire — e.g. steady_clock::now() or rand() mentioned here.
#include <string>

std::string doc() {
  return "call std::chrono::steady_clock::now() then rand()";
}

std::string rawDoc() {
  return R"(thread_local std::unordered_map iteration via table.begin())";
}
