// Fixture: plain function-scope state, no TLS — silent in sim paths.
int bump() {
  static int scratch = 0;
  return ++scratch;
}
