// The socbench framework: ordered JSON round-trips, the ResultSet data
// model and its emitters, the experiment registry and glob selection, the
// nested-safe TaskPool, and end-to-end campaign determinism across job
// counts.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/json.hpp"
#include "tibsim/common/result_set.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/core/campaign.hpp"
#include "tibsim/core/experiment.hpp"

namespace {

using namespace tibsim;
using core::ExperimentContext;
using core::ExperimentRegistry;

// ---------------------------------------------------------------------------
// json::Value
// ---------------------------------------------------------------------------

TEST(Json, DumpPreservesInsertionOrder) {
  json::Value v = json::Value::object();
  v["zeta"] = 1.0;
  v["alpha"] = true;
  v["mid"] = "x";
  EXPECT_EQ(v.dump(), R"({"zeta":1,"alpha":true,"mid":"x"})");
}

TEST(Json, GoldenDocument) {
  json::Value doc = json::Value::object();
  doc["name"] = "fig";
  json::Value xs = json::Value::array();
  xs.push(1.0);
  xs.push(2.5);
  doc["x"] = std::move(xs);
  doc["empty"] = json::Value::array();
  doc["flag"] = false;
  doc["none"] = json::Value();
  EXPECT_EQ(doc.dump(),
            R"({"name":"fig","x":[1,2.5],"empty":[],"flag":false,"none":null})");
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-0.03],"b":{"c":"q\"uote","d":null},"e":true})";
  EXPECT_EQ(json::Value::parse(text).dump(), text);
  // Non-canonical number spellings parse to the same value.
  EXPECT_EQ(json::Value::parse("-3e-2").asDouble(), -0.03);
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(json::formatNumber(1.0), "1");
  EXPECT_EQ(json::formatNumber(0.1), "0.1");
  EXPECT_EQ(json::formatNumber(-2.5e8), "-2.5e+08");
}

TEST(Json, StringEscapes) {
  json::Value v = std::string("a\"b\\c\n\t");
  EXPECT_EQ(v.dump(), R"("a\"b\\c\n\t")");
  EXPECT_EQ(json::Value::parse(v.dump()).asString(), "a\"b\\c\n\t");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(json::Value::parse("{"), json::ParseError);
  EXPECT_THROW(json::Value::parse("[1,]"), json::ParseError);
  EXPECT_THROW(json::Value::parse("1 trailing"), json::ParseError);
}

// ---------------------------------------------------------------------------
// ResultSet
// ---------------------------------------------------------------------------

ResultSet sampleResults() {
  ResultSet results;
  TextTable table({"platform", "GFLOPS"});
  table.addRow({"Tegra2", "2.0"});
  table.addRow({"Exynos5250", "6.8"});
  results.addTable("peak", std::move(table));
  ChartOptions options;
  options.logY = true;
  options.xLabel = "freq";
  results.addChart("speedup", {Series{"Tegra2", {1.0, 2.0}, {1.0, 1.9}}},
                   options);
  results.addMetric("efficiency", 51.0, "%");
  results.addNote("paper anchor");
  return results;
}

TEST(ResultSet, JsonRoundTripIsIdentity) {
  const ResultSet original = sampleResults();
  const json::Value doc = ResultSet::toJson(original);
  const ResultSet reparsed =
      ResultSet::fromJson(json::Value::parse(doc.dump(2)));
  EXPECT_EQ(original, reparsed);
  EXPECT_EQ(doc.dump(2), ResultSet::toJson(reparsed).dump(2));
}

TEST(ResultSet, CsvExport) {
  const auto files = sampleResults().toCsvFiles();
  ASSERT_EQ(files.size(), 3u);  // one table, one chart, the metrics file
  EXPECT_EQ(files[0].first, "peak");
  EXPECT_EQ(files[0].second,
            "platform,GFLOPS\nTegra2,2.0\nExynos5250,6.8\n");
  EXPECT_EQ(files[1].first, "speedup");
  EXPECT_EQ(files[1].second, "series,x,y\nTegra2,1,1\nTegra2,2,1.9\n");
  EXPECT_EQ(files[2].first, "metrics");
  EXPECT_EQ(files[2].second, "metric,value,unit\nefficiency,51,%\n");
}

TEST(ResultSet, RenderTextShowsEverySection) {
  const std::string text = sampleResults().renderText();
  EXPECT_NE(text.find("-- peak --"), std::string::npos);
  EXPECT_NE(text.find("-- metrics --"), std::string::npos);
  EXPECT_NE(text.find("NOTE: paper anchor"), std::string::npos);
}

TEST(ResultSet, MergeKeepsOrder) {
  ResultSet a;
  a.addNote("first");
  ResultSet b = sampleResults();
  b.addNote("last");
  a.merge(std::move(b));
  ASSERT_EQ(a.notes().size(), 3u);
  EXPECT_EQ(a.notes()[0], "first");
  EXPECT_EQ(a.notes()[2], "last");
  EXPECT_EQ(a.tables().size(), 1u);
}

// ---------------------------------------------------------------------------
// ExperimentRegistry
// ---------------------------------------------------------------------------

std::unique_ptr<core::LambdaExperiment> dummy(const std::string& name) {
  return std::make_unique<core::LambdaExperiment>(
      name, "Test", "dummy " + name,
      [](ExperimentContext&) { return ResultSet(); });
}

TEST(ExperimentRegistry, AddFindAndSortedNames) {
  ExperimentRegistry registry;
  registry.add(dummy("zz"));
  registry.add(dummy("aa"));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"aa", "zz"}));
  ASSERT_NE(registry.find("aa"), nullptr);
  EXPECT_EQ(registry.find("aa")->title(), "dummy aa");
  EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(ExperimentRegistry, RejectsDuplicateNames) {
  ExperimentRegistry registry;
  registry.add(dummy("fig"));
  EXPECT_THROW(registry.add(dummy("fig")), ContractError);
}

TEST(ExperimentRegistry, GlobMatch) {
  EXPECT_TRUE(ExperimentRegistry::globMatch("*", "anything"));
  EXPECT_TRUE(ExperimentRegistry::globMatch("fig0?", "fig03"));
  EXPECT_FALSE(ExperimentRegistry::globMatch("fig0?", "fig10"));
  EXPECT_TRUE(ExperimentRegistry::globMatch("ablation_*", "ablation_eee"));
  EXPECT_FALSE(ExperimentRegistry::globMatch("ablation_*", "fig03"));
  EXPECT_TRUE(ExperimentRegistry::globMatch("a*c*e", "abcde"));
  EXPECT_FALSE(ExperimentRegistry::globMatch("a*c*e", "abcd"));
  EXPECT_TRUE(ExperimentRegistry::globMatch("", ""));
  EXPECT_FALSE(ExperimentRegistry::globMatch("", "x"));
}

TEST(ExperimentRegistry, MatchDeduplicatesAndSorts) {
  ExperimentRegistry registry;
  registry.add(dummy("fig01"));
  registry.add(dummy("fig02"));
  registry.add(dummy("tab01"));
  const auto all = registry.match({});
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front()->name(), "fig01");
  const auto selected = registry.match({"fig*", "fig01", "tab01"});
  ASSERT_EQ(selected.size(), 3u);  // fig01 matched twice, listed once
  const auto none = registry.match({"nope*"});
  EXPECT_TRUE(none.empty());
}

TEST(ExperimentRegistry, GlobalHasAllBuiltinExperiments) {
  const auto& registry = ExperimentRegistry::global();
  EXPECT_GE(registry.size(), 22u);
  for (const char* name :
       {"fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
        "fig08", "tab01", "tab02", "tab04", "hpl_green500",
        "energy_to_solution", "imb_suite", "latency_penalty",
        "ecc_reliability", "ablation_interconnect", "ablation_armv8",
        "ablation_dvfs", "ablation_eee", "campaign",
        "scale_bigcluster"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(ExperimentSeed, MixesNameAndCampaignSeed) {
  const auto a = core::experimentSeed(42, "fig03");
  EXPECT_EQ(a, core::experimentSeed(42, "fig03"));
  EXPECT_NE(a, core::experimentSeed(42, "fig04"));
  EXPECT_NE(a, core::experimentSeed(43, "fig03"));
}

// ---------------------------------------------------------------------------
// ExperimentContext + TaskPool
// ---------------------------------------------------------------------------

TEST(ExperimentContext, SerialParallelForCountsCells) {
  ExperimentContext ctx(7);
  std::vector<int> slots(10, 0);
  ctx.parallelFor(slots.size(), [&](std::size_t i) { slots[i] = 1; });
  EXPECT_EQ(ctx.cellsExecuted(), 10u);
  for (int s : slots) EXPECT_EQ(s, 1);
}

TEST(ExperimentContext, RngStreamsAreIndependent) {
  ExperimentContext ctx(7);
  auto a = ctx.rng(0);
  auto b = ctx.rng(1);
  auto a2 = ctx.rng(0);
  EXPECT_EQ(a.nextU64(), a2.nextU64());
  EXPECT_NE(ctx.rng(0).nextU64(), b.nextU64());
}

TEST(ExperimentContext, ExportArtefactDisabledWritesNothing) {
  ExperimentContext ctx(7);
  EXPECT_FALSE(ctx.traceExportEnabled());
  EXPECT_FALSE(ctx.exportArtefact("x.csv", "a,b\n"));
}

TEST(ExperimentContext, ExportArtefactWritesIntoTheConfiguredDir) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tibsim_trace_export_test";
  std::filesystem::remove_all(dir);
  ExperimentContext ctx(7);
  ctx.setTraceExportDir(dir.string());
  EXPECT_TRUE(ctx.traceExportEnabled());
  EXPECT_TRUE(ctx.exportArtefact("run.breakdown.csv", "rank,compute_s\n0,1\n"));
  std::ifstream in(dir / "run.breakdown.csv");
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "rank,compute_s\n0,1\n");
  // Path traversal out of the export dir is a contract violation.
  EXPECT_THROW(ctx.exportArtefact("../escape.csv", "x"), ContractError);
  EXPECT_THROW(ctx.exportArtefact("sub/dir.csv", "x"), ContractError);
  std::filesystem::remove_all(dir);
}

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, NestedParallelForDoesNotDeadlock) {
  TaskPool pool(3);
  std::array<std::array<std::atomic<int>, 8>, 8> hits{};
  pool.parallelFor(8, [&](std::size_t i) {
    pool.parallelFor(8, [&](std::size_t j) { hits[i][j].fetch_add(1); });
  });
  for (const auto& row : hits)
    for (const auto& h : row) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, PropagatesExceptions) {
  TaskPool pool(2);
  EXPECT_THROW(pool.parallelFor(
                   16,
                   [](std::size_t i) {
                     if (i == 11) throw std::runtime_error("cell failed");
                   }),
               std::runtime_error);
}

TEST(TaskPool, ZeroAndSingleIteration) {
  TaskPool pool(2);
  int runs = 0;
  pool.parallelFor(0, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.parallelFor(1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

// ---------------------------------------------------------------------------
// Campaign determinism
// ---------------------------------------------------------------------------

core::CampaignResult quietCampaign(int jobs) {
  core::CampaignOptions options;
  options.patterns = {"fig03"};
  options.jobs = jobs;
  options.summary = false;
  std::ostringstream sink;
  return core::runCampaign(options, sink);
}

TEST(Campaign, JsonIsByteIdenticalAcrossJobCounts) {
  const auto serial = quietCampaign(1);
  const auto parallel = quietCampaign(8);
  ASSERT_EQ(serial.runs.size(), 1u);
  ASSERT_EQ(parallel.runs.size(), 1u);
  EXPECT_FALSE(serial.runs[0].json.empty());
  EXPECT_EQ(serial.runs[0].json, parallel.runs[0].json);
  EXPECT_GT(parallel.runs[0].cells, 0u);
}

TEST(Campaign, ResultDocumentCarriesSchemaAndSeed) {
  const auto campaign = quietCampaign(1);
  const json::Value doc = json::Value::parse(campaign.runs[0].json);
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->asString(), "socbench-result-v1");
  EXPECT_EQ(doc.find("experiment")->asString(), "fig03");
  EXPECT_EQ(doc.find("seed")->asDouble(),
            static_cast<double>(core::experimentSeed(42, "fig03")));
  EXPECT_NE(doc.find("results"), nullptr);
}

TEST(Campaign, ThrowsWhenNothingMatches) {
  core::CampaignOptions options;
  options.patterns = {"no_such_experiment"};
  std::ostringstream sink;
  EXPECT_THROW(core::runCampaign(options, sink), ContractError);
}

core::CampaignResult backendCampaign(const std::string& backend,
                                     const std::string& pattern) {
  core::CampaignOptions options;
  options.patterns = {pattern};
  options.summary = false;
  options.simBackend = backend;
  std::ostringstream sink;
  return core::runCampaign(options, sink);
}

TEST(Campaign, JsonIsByteIdenticalAcrossSimBackends) {
  // imb_suite drives full simMPI worlds, so the simulated clocks and
  // engine counters both cross the backend boundary. The artefacts must not
  // depend on which ExecutionContext ran the ranks.
  const auto fiber = backendCampaign("fiber", "imb_suite");
  const auto thread = backendCampaign("thread", "imb_suite");
  ASSERT_EQ(fiber.runs.size(), 1u);
  ASSERT_EQ(thread.runs.size(), 1u);
  EXPECT_FALSE(fiber.runs[0].json.empty());
  EXPECT_EQ(fiber.runs[0].json, thread.runs[0].json);
}

core::CampaignResult shardedCampaign(int shards, const std::string& backend,
                                     const std::string& pattern) {
  core::CampaignOptions options;
  options.patterns = {pattern};
  options.summary = false;
  options.simShards = shards;
  options.simBackend = backend;
  std::ostringstream sink;
  return core::runCampaign(options, sink);
}

TEST(Campaign, JsonIsByteIdenticalAcrossShardCounts) {
  // fig06 runs 64- and 96-node (multi-leaf-switch) worlds, so
  // --sim-shards > 1 actually partitions the switch tree (8 clamps to the
  // leaf count). The conservative windows plus the barrier merge must
  // reconstruct the single-queue dispatch order exactly: the artefact
  // bytes may not depend on the shard count.
  const auto one = shardedCampaign(1, "", "fig06");
  const auto two = shardedCampaign(2, "", "fig06");
  const auto eight = shardedCampaign(8, "", "fig06");
  ASSERT_EQ(one.runs.size(), 1u);
  ASSERT_EQ(two.runs.size(), 1u);
  ASSERT_EQ(eight.runs.size(), 1u);
  EXPECT_FALSE(one.runs[0].json.empty());
  EXPECT_EQ(one.runs[0].json, two.runs[0].json);
  EXPECT_EQ(one.runs[0].json, eight.runs[0].json);
}

TEST(Campaign, ShardedJsonIsByteIdenticalAcrossSimBackends) {
  // Sharding composes with the execution backend: sharded thread-backend
  // ranks must serialise the same bytes as sharded fibers.
  const auto fiber = shardedCampaign(8, "fiber", "ablation_interconnect");
  const auto thread = shardedCampaign(8, "thread", "ablation_interconnect");
  ASSERT_EQ(fiber.runs.size(), 1u);
  ASSERT_EQ(thread.runs.size(), 1u);
  EXPECT_FALSE(fiber.runs[0].json.empty());
  EXPECT_EQ(fiber.runs[0].json, thread.runs[0].json);
}

TEST(Campaign, TaskFarmJsonIsByteIdenticalAcrossShardsAndBackends) {
  // The wildcard-receive acceptance bar: the task farm's self-scheduling
  // master matches kAnySource results at up to 2,048 ranks, and the full
  // artefact (including the per-worker distribution the tables derive
  // from) must not depend on the shard count or the execution backend.
  const auto one = shardedCampaign(1, "fiber", "taskfarm");
  const auto two = shardedCampaign(2, "fiber", "taskfarm");
  const auto eight = shardedCampaign(8, "fiber", "taskfarm");
  const auto thread = shardedCampaign(8, "thread", "taskfarm");
  ASSERT_EQ(one.runs.size(), 1u);
  EXPECT_FALSE(one.runs[0].json.empty());
  EXPECT_EQ(one.runs[0].json, two.runs[0].json);
  EXPECT_EQ(one.runs[0].json, eight.runs[0].json);
  EXPECT_EQ(one.runs[0].json, thread.runs[0].json);
  EXPECT_EQ(one.runs[0].engine.peakLiveProcesses, 2048u);
}

TEST(Campaign, HydroAsyncJsonIsByteIdenticalAcrossShardsAndBackends) {
  // comm.split()/dup() and the non-blocking collectives cross the shard
  // boundary here: communicator ids are minted from traffic, so every
  // shard count and backend must serialise identical bytes.
  const auto one = shardedCampaign(1, "fiber", "hydro_async");
  const auto eight = shardedCampaign(8, "fiber", "hydro_async");
  const auto thread = shardedCampaign(8, "thread", "hydro_async");
  ASSERT_EQ(one.runs.size(), 1u);
  EXPECT_FALSE(one.runs[0].json.empty());
  EXPECT_EQ(one.runs[0].json, eight.runs[0].json);
  EXPECT_EQ(one.runs[0].json, thread.runs[0].json);
}

TEST(Campaign, EngineStatsLandInResultDocument) {
  const auto campaign = backendCampaign("fiber", "imb_suite");
  const json::Value doc = json::Value::parse(campaign.runs[0].json);
  const json::Value* engine = doc.find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->find("eventsDispatched")->asDouble(), 0.0);
  EXPECT_GT(engine->find("contextSwitches")->asDouble(), 0.0);
  EXPECT_GT(engine->find("processesSpawned")->asDouble(), 0.0);
  EXPECT_GT(engine->find("peakLiveProcesses")->asDouble(), 0.0);
  EXPECT_GT(engine->find("queueHighWater")->asDouble(), 0.0);
  EXPECT_GT(engine->find("simSeconds")->asDouble(), 0.0);
  // Wall-clock time is machine-dependent and must never reach the artefact.
  EXPECT_EQ(engine->find("hostSeconds"), nullptr);
  // Run-level stats mirror the document.
  EXPECT_GT(campaign.runs[0].engine.eventsDispatched, 0u);
}

TEST(Campaign, ExperimentsWithoutSimulationsOmitEngineBlock) {
  // fig03 replays measured single-core numbers; no simMPI world is built.
  const auto campaign = quietCampaign(1);
  const json::Value doc = json::Value::parse(campaign.runs[0].json);
  EXPECT_EQ(doc.find("engine"), nullptr);
}

TEST(Campaign, RejectsUnknownSimBackend) {
  EXPECT_THROW(backendCampaign("green-threads", "fig03"), ContractError);
}

core::CampaignResult traceModeCampaign(const std::string& mode, int jobs) {
  core::CampaignOptions options;
  options.patterns = {"imb_suite"};
  options.jobs = jobs;
  options.summary = false;
  options.traceMode = mode;
  std::ostringstream sink;
  return core::runCampaign(options, sink);
}

TEST(Campaign, WorldStatsLandInResultDocument) {
  const auto campaign = traceModeCampaign("aggregate", 1);
  const json::Value doc = json::Value::parse(campaign.runs[0].json);
  const json::Value* worlds = doc.find("worlds");
  ASSERT_NE(worlds, nullptr);
  EXPECT_GT(worlds->find("worlds")->asDouble(), 0.0);
  EXPECT_GT(worlds->find("messages")->asDouble(), 0.0);
  EXPECT_GT(worlds->find("payloadBytes")->asDouble(), 0.0);
  EXPECT_GT(worlds->find("traceSpansRecorded")->asDouble(), 0.0);
  // Aggregate mode retains no spans for the traced Exchange world.
  EXPECT_EQ(worlds->find("traceSpansRetained")->asDouble(), 0.0);
  EXPECT_GT(worlds->find("traceMemoryPeakBytes")->asDouble(), 0.0);
  // Run-level counters mirror the document.
  EXPECT_GT(campaign.runs[0].counters.worlds, 0u);
}

TEST(Campaign, JsonIsByteIdenticalAcrossJobsInEveryTraceMode) {
  for (const char* mode : {"full", "sampled", "aggregate"}) {
    const auto serial = traceModeCampaign(mode, 1);
    const auto parallel = traceModeCampaign(mode, 8);
    EXPECT_FALSE(serial.runs[0].json.empty());
    EXPECT_EQ(serial.runs[0].json, parallel.runs[0].json) << mode;
  }
}

TEST(Campaign, ExplicitFullModeMatchesDefault) {
  // --trace-mode full must be a no-op relative to the built-in default, so
  // existing full-mode artefacts stay unchanged.
  const auto implicit = quietCampaign(1);
  core::CampaignOptions options;
  options.patterns = {"fig03"};
  options.summary = false;
  options.traceMode = "full";
  std::ostringstream sink;
  const auto explicitMode = core::runCampaign(options, sink);
  EXPECT_EQ(implicit.runs[0].json, explicitMode.runs[0].json);
}

TEST(Campaign, RejectsUnknownTraceMode) {
  EXPECT_THROW(traceModeCampaign("firehose", 1), ContractError);
}

// ---------------------------------------------------------------------------
// CLI flag validation
// ---------------------------------------------------------------------------

int cliExit(std::vector<const char*> args) {
  args.insert(args.begin(), "socbench");
  return core::socbenchMain(static_cast<int>(args.size()), args.data());
}

TEST(Cli, RejectsNonNumericIntegerFlags) {
  // Formerly a bare std::stoi: `--jobs banana` aborted with an uncaught
  // std::invalid_argument instead of a usage error.
  EXPECT_EQ(cliExit({"run", "--jobs", "banana"}), 2);
  EXPECT_EQ(cliExit({"run", "--jobs", "4x"}), 2);
  EXPECT_EQ(cliExit({"run", "--jobs", ""}), 2);
  EXPECT_EQ(cliExit({"run", "--seed", "banana"}), 2);
  EXPECT_EQ(cliExit({"run", "--seed", "-1"}), 2);
  EXPECT_EQ(cliExit({"run", "--sim-shards", "many"}), 2);
  EXPECT_EQ(cliExit({"run", "--procs", "banana"}), 2);
  EXPECT_EQ(cliExit({"run", "--procs", "0"}), 2);
  EXPECT_EQ(cliExit({"run", "--jobs=banana"}), 2);  // --flag=value spelling
}

TEST(Cli, RejectsProcsWithoutCache) {
  EXPECT_EQ(cliExit({"run", "tab01", "--procs", "2"}), 2);
}

TEST(Cli, AcceptsValidNumericFlags) {
  // A valid spelling still runs: tab01 is the cheapest experiment.
  EXPECT_EQ(cliExit({"run", "tab01", "--jobs", "2", "--seed", "7",
                     "--no-summary"}),
            0);
}

}  // namespace
