// Tests for the historical trend module (Figures 1 and 2).

#include <gtest/gtest.h>

#include "tibsim/trend/trend.hpp"

namespace tibsim::trend {
namespace {

TEST(Top500, DatasetCoversTwentyYears) {
  const auto& data = top500ArchitectureShare();
  ASSERT_GE(data.size(), 15u);
  EXPECT_NEAR(data.front().year, 1993.5, 0.1);
  EXPECT_NEAR(data.back().year, 2013.5, 0.1);
  for (const auto& e : data) {
    const int total = e.x86 + e.risc + e.vectorSimd;
    EXPECT_GT(total, 350);  // accelerators/others make up the remainder
    EXPECT_LE(total, 500);
  }
}

TEST(Top500, RiscDisplacesVectorMid90s) {
  const double year = yearRiscOvertakesVector();
  EXPECT_GT(year, 1993.0);
  EXPECT_LT(year, 1996.5);
}

TEST(Top500, X86DisplacesRiscMid2000s) {
  const double year = yearX86OvertakesRisc();
  EXPECT_GT(year, 2002.0);
  EXPECT_LT(year, 2006.0);
}

TEST(Top500, X86DominatesJune2013) {
  const auto& final = top500ArchitectureShare().back();
  EXPECT_GT(final.x86, 450);  // "the June 2013 list is still dominated by x86"
  EXPECT_LT(final.vectorSimd, 10);
}

TEST(ProcessorData, AllClassesNonEmptyAndPositive) {
  for (auto cls : {ProcessorClass::Vector, ProcessorClass::Commodity,
                   ProcessorClass::Server, ProcessorClass::Mobile}) {
    const auto& points = processorPoints(cls);
    ASSERT_GE(points.size(), 5u);
    for (const auto& p : points) {
      EXPECT_GT(p.peakMflops, 0.0) << p.name;
      EXPECT_GT(p.year, 1970.0) << p.name;
      EXPECT_FALSE(p.name.empty());
    }
  }
}

TEST(ProcessorData, KeyPlatformsPresent) {
  const auto& mobile = processorPoints(ProcessorClass::Mobile);
  bool tegra2 = false, armv8 = false;
  for (const auto& p : mobile) {
    if (p.name.find("Tegra 2") != std::string::npos) {
      tegra2 = true;
      EXPECT_DOUBLE_EQ(p.peakMflops, 2000.0);  // Table 1: 2.0 GFLOPS
    }
    if (p.name.find("ARMv8") != std::string::npos) {
      armv8 = true;
      EXPECT_DOUBLE_EQ(p.peakMflops, 32000.0);
    }
  }
  EXPECT_TRUE(tegra2);
  EXPECT_TRUE(armv8);
}

TEST(Fits, AllGrowthRatesPositiveWithGoodR2) {
  for (auto cls : {ProcessorClass::Vector, ProcessorClass::Commodity,
                   ProcessorClass::Server, ProcessorClass::Mobile}) {
    const ExponentialFit fit = fitClass(cls);
    EXPECT_GT(fit.b, 0.0);
    // The mobile ramp is short and steppy (A8 -> Tegra 2 is a ~8x jump)
    // and the commodity class mixes Alpha/POWER with the much slower
    // Pentium line, so those two fits are noisier than vector/server.
    const bool noisy = cls == ProcessorClass::Mobile ||
                       cls == ProcessorClass::Commodity;
    EXPECT_GT(fit.r2, noisy ? 0.55 : 0.80);
  }
}

TEST(Fits, VectorToMicroGapWasAboutTenfold) {
  // "commodity microprocessors ... were around ten times slower ... in the
  //  period 1990 to 2000"
  const double gap95 = gapAt(ProcessorClass::Vector,
                             ProcessorClass::Commodity, 1995.0);
  EXPECT_GT(gap95, 4.0);
  EXPECT_LT(gap95, 25.0);
}

TEST(Fits, ServerToMobileGapAboutTenfoldIn2013) {
  // "mobile SoCs ... are still ten times slower" (Figure 2(b), 2012-13).
  const double gap = gapAt(ProcessorClass::Server, ProcessorClass::Mobile,
                           2013.0);
  EXPECT_GT(gap, 4.0);
  EXPECT_LT(gap, 30.0);
}

TEST(Fits, MobileGrowsFasterThanServer) {
  EXPECT_GT(fitClass(ProcessorClass::Mobile).b,
            fitClass(ProcessorClass::Server).b);
  // Mobile doubling time is dramatically shorter during its ramp.
  EXPECT_LT(fitClass(ProcessorClass::Mobile).doublingTime(), 1.5);
  EXPECT_GT(fitClass(ProcessorClass::Server).doublingTime(), 1.2);
}

TEST(Fits, CrossoverProjectedWithinADecadeOfThePaper) {
  const double year = projectedCrossover(ProcessorClass::Mobile,
                                         ProcessorClass::Server);
  EXPECT_GT(year, 2013.0);
  EXPECT_LT(year, 2026.0);
}

TEST(Fits, CommodityOvertookVectorHistorically) {
  // The commodity curve grows faster, so a crossover is projected shortly
  // after the fitted window. (Historically vector parts simply stopped
  // evolving after ~2000 while micros kept doubling — the projection from
  // the pre-2000 data alone lands in the 2000s-2010s.)
  const double year = projectedCrossover(ProcessorClass::Commodity,
                                         ProcessorClass::Vector);
  EXPECT_GT(year, 1998.0);
  EXPECT_LT(year, 2025.0);
}

}  // namespace
}  // namespace tibsim::trend
