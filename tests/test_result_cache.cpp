// The content-addressed result cache and the multi-process campaign
// scheduler: key ingredients flip independently, corrupt entries are
// misses (never trusted), warm reruns replay byte-identically, and
// --procs worker processes produce the same artefact bytes as in-process
// execution.
//
// This binary has its own main(): the --procs scheduler re-invokes
// /proc/self/exe, which under ctest is THIS test binary, so a leading
// "run" argv forwards to socbenchMain before gtest ever initialises.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/json.hpp"
#include "tibsim/core/campaign.hpp"
#include "tibsim/core/result_cache.hpp"

namespace {

using namespace tibsim;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------------

core::CacheKeyInputs baseInputs() {
  core::CacheKeyInputs inputs;
  inputs.experiment = "tab01";
  inputs.versionTag = "1";
  inputs.seed = 42;
  inputs.simBackend = "fiber";
  inputs.traceMode = "full";
  inputs.simShards = 1;
  inputs.stallReport = false;
  inputs.platformSpecHash = 0x1234;
  inputs.binaryFingerprint = 0x5678;
  return inputs;
}

TEST(CacheKey, IsStableAndHexFormatted) {
  const std::string key = core::cacheKey(baseInputs());
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(core::cacheKey(baseInputs()), key);
}

TEST(CacheKey, EveryIngredientFlipsTheKeyIndependently) {
  const std::string key = core::cacheKey(baseInputs());
  const auto flipped = [&](auto mutate) {
    core::CacheKeyInputs inputs = baseInputs();
    mutate(inputs);
    return core::cacheKey(inputs);
  };
  EXPECT_NE(flipped([](auto& i) { i.experiment = "tab02"; }), key);
  EXPECT_NE(flipped([](auto& i) { i.versionTag = "2"; }), key);
  EXPECT_NE(flipped([](auto& i) { i.seed = 43; }), key);
  EXPECT_NE(flipped([](auto& i) { i.simBackend = "thread"; }), key);
  EXPECT_NE(flipped([](auto& i) { i.traceMode = "aggregate"; }), key);
  EXPECT_NE(flipped([](auto& i) { i.simShards = 8; }), key);
  EXPECT_NE(flipped([](auto& i) { i.stallReport = true; }), key);
  EXPECT_NE(flipped([](auto& i) { i.platformSpecHash ^= 1; }), key);
  EXPECT_NE(flipped([](auto& i) { i.binaryFingerprint ^= 1; }), key);
}

TEST(CacheKey, LengthPrefixedStringsResistConcatenationCollisions) {
  core::CacheHasher a;
  a.str("ab");
  a.str("c");
  core::CacheHasher b;
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(CacheKey, SpecHashAndBinaryFingerprintAreStableAndNonzero) {
  // The spec hash folds every Table-1 field; zero would mean it hashed
  // nothing. Deterministic within a build by construction.
  EXPECT_NE(core::hashPlatformSpecs(), 0u);
  EXPECT_EQ(core::hashPlatformSpecs(), core::hashPlatformSpecs());
  // /proc/self/exe is always readable on the Linux CI hosts.
  EXPECT_NE(core::executableFingerprint(), 0u);
  EXPECT_EQ(core::executableFingerprint(), core::executableFingerprint());
}

TEST(CacheKey, ExperimentVersionTagDefaultsToOne) {
  const core::LambdaExperiment plain(
      "k1", "r", "t", [](core::ExperimentContext&) { return ResultSet(); });
  const core::LambdaExperiment tagged(
      "k2", "r", "t", [](core::ExperimentContext&) { return ResultSet(); },
      "7");
  EXPECT_EQ(plain.versionTag(), "1");
  EXPECT_EQ(tagged.versionTag(), "7");
}

// ---------------------------------------------------------------------------
// Entry round-trip and corruption handling
// ---------------------------------------------------------------------------

core::CachedRun sampleRun() {
  core::CachedRun run;
  run.cells = 9;
  run.engine.eventsDispatched = 1234;
  run.engine.contextSwitches = 567;
  run.engine.processesSpawned = 89;
  run.engine.peakLiveProcesses = 12;
  run.engine.queueHighWater = 34;
  run.engine.simSeconds = 0.125;
  run.counters.worlds = 3;
  run.counters.messages = 456;
  run.counters.payloadBytes = 1e6 + 0.5;
  run.counters.wireBytes = 2e6 + 0.25;
  run.counters.spansRecorded = 78;
  run.counters.spansRetained = 56;
  run.counters.traceMemoryPeakBytes = 4096;
  run.counters.payloadInlineMessages = 100;
  run.counters.payloadPooledMessages = 200;
  run.counters.payloadPoolReuses = 150;
  run.counters.payloadPoolAllocations = 50;
  run.counters.payloadPoolReturns = 190;
  run.counters.payloadPoolTrimmedBuffers = 10;
  run.counters.payloadPoolLiveHighWater = 17;
  obs::PayloadClassCounters cls;
  cls.classBytes = 256;
  cls.acquires = 40;
  cls.reuses = 30;
  cls.allocations = 10;
  cls.parked = 5;
  run.counters.payloadPoolClasses.push_back(cls);
  run.counters.links.uplink.busySeconds = 0.5;
  run.counters.links.uplink.bytes = 1e5;
  run.counters.links.uplink.transfers = 77;
  run.counters.links.uplink.queueSeconds = 0.0625;
  run.counters.links.uplink.maxLinkBusySeconds = 0.25;
  run.counters.links.uplink.queueDelay.counts[3] = 11;
  run.counters.links.core.transfers = 5;
  run.counters.criticalPath.computeSeconds = 0.75;
  run.counters.criticalPath.sendSeconds = 0.1;
  run.counters.criticalPath.recvSeconds = 0.2;
  run.counters.criticalPath.linkSeconds = 0.3;
  run.counters.criticalPath.waitSeconds = 0.4;
  run.counters.criticalPath.edges = 6;
  run.counters.criticalPath.endRank = 2;
  ResultSet results;
  results.addMetric("answer", 42.25, "x");
  run.results = results;
  json::Value doc = json::Value::object();
  doc["schema"] = "socbench-result-v1";
  doc["results"] = ResultSet::toJson(results);
  run.resultJson = doc.dump(2) + "\n";
  return run;
}

fs::path freshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

TEST(ResultCache, StoreLoadRoundTripsEveryField) {
  const fs::path dir = freshDir("tibsim_cache_roundtrip");
  const core::ResultCache cache(dir.string());
  const core::CachedRun stored = sampleRun();
  cache.store("tab01", "00000000000000ab", stored);
  const auto loaded = cache.load("tab01", "00000000000000ab");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cells, stored.cells);
  EXPECT_EQ(loaded->engine.eventsDispatched, stored.engine.eventsDispatched);
  EXPECT_EQ(loaded->engine.contextSwitches, stored.engine.contextSwitches);
  EXPECT_EQ(loaded->engine.processesSpawned, stored.engine.processesSpawned);
  EXPECT_EQ(loaded->engine.peakLiveProcesses,
            stored.engine.peakLiveProcesses);
  EXPECT_EQ(loaded->engine.queueHighWater, stored.engine.queueHighWater);
  EXPECT_EQ(loaded->engine.simSeconds, stored.engine.simSeconds);
  // Host-only engine fields never ride through the cache.
  EXPECT_EQ(loaded->engine.hostSeconds, 0.0);
  EXPECT_EQ(loaded->engine.stackHighWaterBytes, 0u);
  EXPECT_EQ(loaded->counters.worlds, stored.counters.worlds);
  EXPECT_EQ(loaded->counters.messages, stored.counters.messages);
  EXPECT_EQ(loaded->counters.payloadBytes, stored.counters.payloadBytes);
  EXPECT_EQ(loaded->counters.wireBytes, stored.counters.wireBytes);
  ASSERT_EQ(loaded->counters.payloadPoolClasses.size(), 1u);
  EXPECT_EQ(loaded->counters.payloadPoolClasses[0].classBytes, 256u);
  EXPECT_EQ(loaded->counters.payloadPoolClasses[0].reuses, 30u);
  EXPECT_EQ(loaded->counters.links.uplink.busySeconds, 0.5);
  EXPECT_EQ(loaded->counters.links.uplink.transfers, 77u);
  EXPECT_EQ(loaded->counters.links.uplink.queueDelay.counts[3], 11u);
  EXPECT_EQ(loaded->counters.links.core.transfers, 5u);
  EXPECT_EQ(loaded->counters.criticalPath.waitSeconds, 0.4);
  EXPECT_EQ(loaded->counters.criticalPath.endRank, 2);
  EXPECT_EQ(loaded->resultJson, stored.resultJson);
  ASSERT_EQ(loaded->results.metrics().size(), 1u);
  EXPECT_EQ(loaded->results.metrics()[0].name, "answer");
  EXPECT_EQ(loaded->results.metrics()[0].value, 42.25);
  fs::remove_all(dir);
}

TEST(ResultCache, AbsentEntryIsAMiss) {
  const fs::path dir = freshDir("tibsim_cache_absent");
  const core::ResultCache cache(dir.string());
  EXPECT_FALSE(cache.load("tab01", "00000000000000ab").has_value());
  fs::remove_all(dir);
}

TEST(ResultCache, CorruptedEntryIsAMissAndGetsRewritten) {
  const fs::path dir = freshDir("tibsim_cache_corrupt");
  const core::ResultCache cache(dir.string());
  cache.store("tab01", "00000000000000ab", sampleRun());
  const fs::path entry =
      dir / core::ResultCache::entryFileName("tab01", "00000000000000ab");
  ASSERT_TRUE(fs::exists(entry));
  // Truncate to half: a torn write must read as a miss, never as data.
  const auto size = fs::file_size(entry);
  fs::resize_file(entry, size / 2);
  EXPECT_FALSE(cache.load("tab01", "00000000000000ab").has_value());
  // The caller's recompute path overwrites the bad bytes.
  cache.store("tab01", "00000000000000ab", sampleRun());
  EXPECT_TRUE(cache.load("tab01", "00000000000000ab").has_value());
  fs::remove_all(dir);
}

TEST(ResultCache, TamperedSchemaOrKeyIsAMiss) {
  const fs::path dir = freshDir("tibsim_cache_tamper");
  const core::ResultCache cache(dir.string());
  cache.store("tab01", "00000000000000ab", sampleRun());
  const fs::path entry =
      dir / core::ResultCache::entryFileName("tab01", "00000000000000ab");
  std::ifstream in(entry);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  // Valid JSON, wrong schema tag.
  {
    std::string text = buffer.str();
    const auto pos = text.find("socbench-cache-v1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 17, "socbench-cache-v0");
    std::ofstream out(entry, std::ios::trunc);
    out << text;
  }
  EXPECT_FALSE(cache.load("tab01", "00000000000000ab").has_value());
  // A renamed entry (key in the file disagrees with the probe) is a miss:
  // the stored key is validated, not trusted from the file name.
  cache.store("tab01", "00000000000000ab", sampleRun());
  fs::copy_file(entry,
                dir / core::ResultCache::entryFileName("tab01",
                                                       "00000000000000cd"),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(cache.load("tab01", "00000000000000cd").has_value());
  fs::remove_all(dir);
}

TEST(ResultCache, IndexIsDeterministicAndSkipsInvalidEntries) {
  const fs::path dir = freshDir("tibsim_cache_index");
  const core::ResultCache cache(dir.string());
  cache.store("tab04", "00000000000000cd", sampleRun());
  cache.store("tab01", "00000000000000ab", sampleRun());
  std::ofstream(dir / "garbage.json") << "{not json";
  cache.writeIndex();
  std::ifstream in(dir / "index.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string first = buffer.str();
  const json::Value index = json::Value::parse(first);
  EXPECT_EQ(index.find("schema")->asString(), "socbench-cache-index-v1");
  const json::Value* entries = index.find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->size(), 2u);  // garbage.json is invisible
  EXPECT_EQ(entries->at(0).find("experiment")->asString(), "tab01");
  EXPECT_EQ(entries->at(1).find("experiment")->asString(), "tab04");
  // Same cache content -> same index bytes.
  cache.writeIndex();
  std::ifstream again(dir / "index.json");
  std::stringstream second;
  second << again.rdbuf();
  EXPECT_EQ(second.str(), first);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------------

std::map<std::string, std::string> readDir(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    files[entry.path().filename().string()] = buffer.str();
  }
  return files;
}

core::CampaignResult cachedCampaign(const fs::path& cacheDir,
                                    const fs::path& jsonDir,
                                    const fs::path& csvDir, int procs = 1,
                                    std::uint64_t seed = 42) {
  core::CampaignOptions options;
  options.patterns = {"tab01", "tab04"};
  options.summary = false;
  options.cacheDir = cacheDir.string();
  options.jsonDir = jsonDir.string();
  options.csvDir = csvDir.string();
  options.procs = procs;
  options.seed = seed;
  std::ostringstream sink;
  return core::runCampaign(options, sink);
}

TEST(CampaignCache, WarmRerunReplaysEveryCellByteIdentically) {
  const fs::path base = freshDir("tibsim_cache_campaign");
  const auto cold =
      cachedCampaign(base / "cache", base / "j1", base / "c1");
  EXPECT_EQ(cold.cacheHits, 0u);
  EXPECT_EQ(cold.cacheMisses, 2u);
  const auto warm =
      cachedCampaign(base / "cache", base / "j2", base / "c2");
  EXPECT_EQ(warm.cacheHits, 2u);  // 100% of cells replay
  EXPECT_EQ(warm.cacheMisses, 0u);
  ASSERT_EQ(cold.runs.size(), warm.runs.size());
  for (std::size_t i = 0; i < cold.runs.size(); ++i) {
    EXPECT_FALSE(cold.runs[i].fromCache);
    EXPECT_TRUE(warm.runs[i].fromCache);
    EXPECT_EQ(cold.runs[i].json, warm.runs[i].json);
    EXPECT_EQ(cold.runs[i].cells, warm.runs[i].cells);
  }
  EXPECT_EQ(readDir(base / "j1"), readDir(base / "j2"));
  EXPECT_EQ(readDir(base / "c1"), readDir(base / "c2"));
  EXPECT_TRUE(fs::exists(base / "cache" / "index.json"));
  fs::remove_all(base);
}

TEST(CampaignCache, SeedChangeInvalidatesEveryCell) {
  const fs::path base = freshDir("tibsim_cache_seedflip");
  cachedCampaign(base / "cache", base / "j1", base / "c1", 1, 42);
  const auto reseeded =
      cachedCampaign(base / "cache", base / "j2", base / "c2", 1, 43);
  EXPECT_EQ(reseeded.cacheHits, 0u);
  EXPECT_EQ(reseeded.cacheMisses, 2u);
  fs::remove_all(base);
}

TEST(CampaignCache, WorkerProcessesProduceIdenticalArtefacts) {
  // --procs 2 re-invokes /proc/self/exe — this test binary — whose main()
  // forwards "run" to socbenchMain, exactly like the socbench CLI.
  const fs::path base = freshDir("tibsim_cache_procs");
  const auto inproc =
      cachedCampaign(base / "cacheA", base / "j1", base / "c1", 1);
  const auto workers =
      cachedCampaign(base / "cacheB", base / "j2", base / "c2", 2);
  EXPECT_EQ(workers.cacheHits, 0u);
  EXPECT_EQ(workers.cacheMisses, 2u);
  ASSERT_EQ(inproc.runs.size(), workers.runs.size());
  for (std::size_t i = 0; i < inproc.runs.size(); ++i) {
    EXPECT_TRUE(workers.runs[i].fromCache);  // folded from the cache
    EXPECT_EQ(inproc.runs[i].json, workers.runs[i].json);
  }
  EXPECT_EQ(readDir(base / "j1"), readDir(base / "j2"));
  EXPECT_EQ(readDir(base / "c1"), readDir(base / "c2"));
  fs::remove_all(base);
}

TEST(CampaignCache, ProcsRequiresCacheDir) {
  core::CampaignOptions options;
  options.patterns = {"tab01"};
  options.summary = false;
  options.procs = 2;
  std::ostringstream sink;
  EXPECT_THROW(core::runCampaign(options, sink), ContractError);
}

TEST(CampaignCache, TraceExportDisablesTheCache) {
  const fs::path base = freshDir("tibsim_cache_traceexport");
  core::CampaignOptions options;
  options.patterns = {"tab01"};
  options.summary = false;
  options.cacheDir = (base / "cache").string();
  options.traceExportDir = (base / "export").string();
  std::ostringstream sink;
  const auto campaign = core::runCampaign(options, sink);
  EXPECT_EQ(campaign.cacheHits, 0u);
  // No cache directory is even created: exported timeline artefacts are
  // written during the run and a replay could not reproduce them.
  EXPECT_FALSE(fs::exists(base / "cache"));
  fs::remove_all(base);
}

TEST(CampaignCache, WorkerCellsCliComputesIntoTheCache) {
  const fs::path base = freshDir("tibsim_cache_workercli");
  const std::string cacheDir = (base / "cache").string();
  const char* argv[] = {"socbench",       "run", "--worker-cells", "tab01",
                        "--cache",        cacheDir.c_str(),
                        "--no-summary"};
  EXPECT_EQ(core::socbenchMain(7, argv), 0);
  // Exactly one entry, no index (the parent owns index.json).
  std::size_t entries = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(cacheDir)) {
    EXPECT_NE(entry.path().filename().string(), "index.json");
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(base);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "run")
    return tibsim::core::socbenchMain(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
