// The observability layer: bounded-memory trace sinks (full / sampled /
// aggregate), their exactness and determinism guarantees, the exporters,
// fiber stack telemetry, and the stats hooks threaded through the IMB
// helpers and cluster jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/json.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/mpi/imb.hpp"
#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/obs/exporters.hpp"
#include "tibsim/obs/stall_report.hpp"
#include "tibsim/obs/trace_sink.hpp"
#include "tibsim/sim/simulation.hpp"

namespace {

using namespace tibsim;
using namespace tibsim::units;
using obs::SpanKind;
using obs::TraceMode;
using obs::TraceSpan;

// ---------------------------------------------------------------------------
// Trace mode plumbing
// ---------------------------------------------------------------------------

TEST(TraceMode, ParseAndToStringRoundTrip) {
  for (TraceMode mode :
       {TraceMode::Full, TraceMode::Sampled, TraceMode::Aggregate}) {
    EXPECT_EQ(obs::parseTraceMode(obs::toString(mode)), mode);
  }
  EXPECT_THROW(obs::parseTraceMode("firehose"), ContractError);
  EXPECT_THROW(obs::parseTraceMode(""), ContractError);
}

TEST(TraceMode, ScopedOverrideRestoresPrevious) {
  const TraceMode before = obs::defaultTraceMode();
  {
    obs::ScopedTraceMode scoped(TraceMode::Aggregate);
    EXPECT_EQ(obs::defaultTraceMode(), TraceMode::Aggregate);
    // WorldConfig snapshots the default at construction.
    mpi::WorldConfig cfg;
    EXPECT_EQ(cfg.traceMode, TraceMode::Aggregate);
  }
  EXPECT_EQ(obs::defaultTraceMode(), before);
}

// ---------------------------------------------------------------------------
// DurationHistogram
// ---------------------------------------------------------------------------

TEST(DurationHistogram, BucketsArePowerOfTwoNanoseconds) {
  using H = obs::DurationHistogram;
  EXPECT_EQ(H::bucketFor(0.0), 0);
  EXPECT_EQ(H::bucketFor(-1.0), 0);
  EXPECT_EQ(H::bucketFor(1e-9), 0);   // 1 ns
  EXPECT_EQ(H::bucketFor(3e-9), 1);   // [2, 4) ns
  EXPECT_EQ(H::bucketFor(4e-9), 2);   // [4, 8) ns
  EXPECT_EQ(H::bucketFor(1.0), 29);   // 1 s ~ 2^29.9 ns
  EXPECT_EQ(H::bucketFor(1e6), H::kBuckets - 1);  // tail absorbs
  EXPECT_DOUBLE_EQ(H::bucketLowerSeconds(0), 1e-9);
  EXPECT_DOUBLE_EQ(H::bucketLowerSeconds(10), 1024e-9);
}

TEST(DurationHistogram, RecordCountsAndTotals) {
  obs::DurationHistogram h;
  h.record(1e-9);
  h.record(3e-9);
  h.record(3.5e-9);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.total(), 3u);
}

// ---------------------------------------------------------------------------
// Sinks: exact totals in every mode, bounded retention
// ---------------------------------------------------------------------------

std::vector<TraceSpan> syntheticSpans(int ranks, int perRank) {
  std::vector<TraceSpan> spans;
  double t = 0.0;
  for (int i = 0; i < perRank; ++i) {
    for (int r = 0; r < ranks; ++r) {
      const auto kind = static_cast<SpanKind>((i + r) % obs::kSpanKinds);
      spans.push_back(TraceSpan{r, kind, t, t + 1e-4 * (r + 1), -1, 0});
    }
    t += 1e-3;
  }
  return spans;
}

TEST(TraceSink, SummariesAreExactInEveryMode) {
  const auto spans = syntheticSpans(4, 100);
  const auto full = obs::TraceSink::create({TraceMode::Full, 512, 0});
  const auto sampled = obs::TraceSink::create({TraceMode::Sampled, 8, 42});
  const auto aggregate = obs::TraceSink::create({TraceMode::Aggregate, 0, 0});
  for (const auto& span : spans) {
    full->record(span);
    sampled->record(span);
    aggregate->record(span);
  }
  const double wall = 0.2;
  const auto expected = full->summarize(4, wall);
  for (const obs::TraceSink* sink : {sampled.get(), aggregate.get()}) {
    EXPECT_EQ(sink->spansRecorded(), spans.size());
    const auto got = sink->summarize(4, wall);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t r = 0; r < got.size(); ++r) {
      EXPECT_DOUBLE_EQ(got[r].computeSeconds, expected[r].computeSeconds);
      EXPECT_DOUBLE_EQ(got[r].sendSeconds, expected[r].sendSeconds);
      EXPECT_DOUBLE_EQ(got[r].recvSeconds, expected[r].recvSeconds);
      EXPECT_DOUBLE_EQ(got[r].waitSeconds, expected[r].waitSeconds);
      EXPECT_DOUBLE_EQ(got[r].otherSeconds, expected[r].otherSeconds);
    }
    EXPECT_DOUBLE_EQ(sink->nonComputeFraction(4, wall),
                     full->nonComputeFraction(4, wall));
  }
}

TEST(TraceSink, SampledReservoirIsDeterministicAndBounded) {
  const auto spans = syntheticSpans(4, 200);
  const obs::SinkConfig cfg{TraceMode::Sampled, 8, 1234};
  const auto a = obs::TraceSink::create(cfg);
  const auto b = obs::TraceSink::create(cfg);
  const auto other = obs::TraceSink::create({TraceMode::Sampled, 8, 99});
  for (const auto& span : spans) {
    a->record(span);
    b->record(span);
    other->record(span);
  }
  EXPECT_EQ(a->spansRetained(), 4u * 8u);
  EXPECT_LT(a->spansRetained(), a->spansRecorded());
  const auto ra = a->retainedSpans();
  const auto rb = b->retainedSpans();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].rank, rb[i].rank);
    EXPECT_EQ(ra[i].kind, rb[i].kind);
    EXPECT_DOUBLE_EQ(ra[i].begin, rb[i].begin);
    EXPECT_DOUBLE_EQ(ra[i].end, rb[i].end);
  }
  // A different seed keeps a different sample of the same stream.
  const auto ro = other->retainedSpans();
  bool differs = false;
  for (std::size_t i = 0; i < ra.size() && !differs; ++i)
    differs = ra[i].begin != ro[i].begin || ra[i].kind != ro[i].kind;
  EXPECT_TRUE(differs);
}

TEST(TraceSink, AggregateRetainsNoSpansButCountsEverything) {
  const auto spans = syntheticSpans(3, 50);
  const auto sink = obs::TraceSink::create({TraceMode::Aggregate, 0, 0});
  for (const auto& span : spans) sink->record(span);
  EXPECT_EQ(sink->spansRetained(), 0u);
  EXPECT_TRUE(sink->retainedSpans().empty());
  EXPECT_EQ(sink->spansRecorded(), spans.size());
  std::uint64_t histogramTotal = 0;
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < obs::kSpanKinds; ++k) {
      const auto* h = sink->histogram(r, static_cast<SpanKind>(k));
      ASSERT_NE(h, nullptr);
      histogramTotal += h->total();
    }
  }
  EXPECT_EQ(histogramTotal, spans.size());
  EXPECT_EQ(sink->histogram(99, SpanKind::Compute), nullptr);
  // The other modes expose no histograms.
  const auto full = obs::TraceSink::create({TraceMode::Full, 0, 0});
  full->record(spans[0]);
  EXPECT_EQ(full->histogram(0, SpanKind::Compute), nullptr);
}

TEST(TraceSink, AggregateMemoryIsFarBelowFullOnLongStreams) {
  const auto spans = syntheticSpans(8, 2000);
  const auto full = obs::TraceSink::create({TraceMode::Full, 0, 0});
  const auto aggregate = obs::TraceSink::create({TraceMode::Aggregate, 0, 0});
  for (const auto& span : spans) {
    full->record(span);
    aggregate->record(span);
  }
  EXPECT_LT(aggregate->memoryBytes(), full->memoryBytes() / 10);
  // Aggregate memory depends on the rank count, not the span count.
  const auto longer = obs::TraceSink::create({TraceMode::Aggregate, 0, 0});
  for (int rep = 0; rep < 3; ++rep)
    for (const auto& span : spans) longer->record(span);
  EXPECT_EQ(longer->memoryBytes(), aggregate->memoryBytes());
}

TEST(TraceSink, OtherSecondsClampedWhenSpansOverlap) {
  const auto sink = obs::TraceSink::create({TraceMode::Full, 0, 0});
  sink->record(TraceSpan{0, SpanKind::Compute, 0.0, 1.0, -1, 0});
  sink->record(TraceSpan{0, SpanKind::Wait, 0.0, 1.0, -1, 0});  // overlaps
  const auto overlapped = sink->summarize(1, 1.5);
  EXPECT_DOUBLE_EQ(overlapped[0].otherSeconds, 0.0);  // 1.5 - 2.0 clamps
  sink->clear();
  sink->record(TraceSpan{0, SpanKind::Compute, 0.0, 1.0, -1, 0});
  const auto disjoint = sink->summarize(1, 1.5);
  EXPECT_DOUBLE_EQ(disjoint[0].otherSeconds, 0.5);
}

TEST(TraceSink, ClearResetsEverything) {
  const auto sink = obs::TraceSink::create({TraceMode::Sampled, 4, 7});
  for (const auto& span : syntheticSpans(2, 20)) sink->record(span);
  sink->clear();
  EXPECT_EQ(sink->spansRecorded(), 0u);
  EXPECT_EQ(sink->spansRetained(), 0u);
  const auto summaries = sink->summarize(2, 1.0);
  EXPECT_DOUBLE_EQ(summaries[0].computeSeconds, 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].otherSeconds, 1.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, ChromeJsonEmitsCompleteEvents) {
  const std::vector<TraceSpan> spans = {
      TraceSpan{1, SpanKind::Send, 0.5, 1.0, 0, 64},
      TraceSpan{0, SpanKind::Compute, 0.0, 0.5, -1, 0},
  };
  const std::string json = obs::exportChromeJson(spans);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"peer\":0,\"bytes\":64}"),
            std::string::npos);
  // Compute spans have no peer, so no args block on the second event.
  EXPECT_EQ(json.find("\"tid\":0,\"ts\":0,\"dur\":500000,\"args\""),
            std::string::npos);
}

TEST(Exporters, PrvHeaderAndStateRecords) {
  const std::vector<TraceSpan> spans = {
      TraceSpan{0, SpanKind::Compute, 0.0, 0.5, -1, 0},
      TraceSpan{1, SpanKind::Wait, 0.5, 1.0, -1, 0},
  };
  const std::string prv = obs::exportPrv(spans, 2, 1.0);
  EXPECT_EQ(prv.rfind("#Paraver ():1000000000_ns:1(2):1:2(1:1,1:1)\n", 0),
            0u);
  EXPECT_NE(prv.find("1:1:1:1:1:0:500000000:1\n"), std::string::npos);
  EXPECT_NE(prv.find("1:2:1:2:1:500000000:1000000000:3\n"),
            std::string::npos);
}

TEST(Exporters, ChromeJsonEscapesProcessNames) {
  const std::vector<TraceSpan> spans = {
      TraceSpan{0, SpanKind::Compute, 0.0, 0.5, -1, 0},
  };
  const std::string name = "hydro \"async\" C:\\traces\n";
  const std::string json = obs::exportChromeJson(spans, name);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("hydro \\\"async\\\" C:\\\\traces\\n"),
            std::string::npos)
      << json;
  // The document must stay valid JSON and round-trip the raw name.
  const json::Value doc = json::Value::parse(json);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);  // metadata event + the span
  const json::Value* args = events->at(0).find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("name")->asString(), name);
}

TEST(Exporters, ChromeJsonWithoutNameHasNoMetadataEvent) {
  const std::vector<TraceSpan> spans = {
      TraceSpan{0, SpanKind::Compute, 0.0, 0.5, -1, 0},
  };
  const std::string json = obs::exportChromeJson(spans);
  EXPECT_EQ(json.find("process_name"), std::string::npos);
  EXPECT_EQ(json::Value::parse(json).find("traceEvents")->size(), 1u);
}

TEST(Exporters, BreakdownCsvHasOneRowPerRank) {
  obs::RankSummary s0;
  s0.rank = 0;
  s0.computeSeconds = 1.5;
  s0.otherSeconds = 0.5;
  obs::RankSummary s1;
  s1.rank = 1;
  s1.sendSeconds = 0.25;
  const std::string csv = obs::exportBreakdownCsv({s0, s1});
  EXPECT_EQ(csv,
            "rank,compute_s,send_s,recv_s,wait_s,other_s\n"
            "0,1.5,0,0,0,0.5\n"
            "1,0,0.25,0,0,0\n");
}

// ---------------------------------------------------------------------------
// World-level accounting and backend determinism
// ---------------------------------------------------------------------------

mpi::WorldConfig tegraConfig() {
  mpi::WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = ghz(1.0);
  cfg.protocol = net::Protocol::TcpIp;
  cfg.ranksPerNode = 1;
  return cfg;
}

void commHeavyBody(mpi::MpiContext& ctx) {
  for (int i = 0; i < 20; ++i) {
    ctx.computeSeconds(1e-4);
    ctx.sendrecv(ctx.rank() ^ 1, 1, 4096);  // pairwise exchange (even size)
    ctx.barrier();
  }
}

TEST(WorldTrace, StatsCarryTraceAccounting) {
  mpi::WorldConfig cfg = tegraConfig();
  cfg.traceMode = TraceMode::Aggregate;
  mpi::MpiWorld world(cfg, 4);
  world.enableTracing();
  const auto stats = world.run(commHeavyBody);
  EXPECT_GT(stats.traceSpansRecorded, 0u);
  EXPECT_EQ(stats.traceSpansRetained, 0u);
  EXPECT_GT(stats.traceMemoryBytes, 0u);
  EXPECT_EQ(world.tracer().mode(), TraceMode::Aggregate);

  // An untraced world reports zeros.
  mpi::MpiWorld quiet(tegraConfig(), 4);
  const auto quietStats = quiet.run(commHeavyBody);
  EXPECT_EQ(quietStats.traceSpansRecorded, 0u);
  EXPECT_EQ(quietStats.traceMemoryBytes, 0u);
}

std::vector<TraceSpan> sampledRun(sim::ExecBackend backend) {
  mpi::WorldConfig cfg = tegraConfig();
  cfg.simBackend = backend;
  cfg.traceMode = TraceMode::Sampled;
  cfg.traceReservoirPerRank = 16;
  cfg.traceSeed = 7;
  mpi::MpiWorld world(cfg, 4);
  world.enableTracing();
  world.run(commHeavyBody);
  return world.tracer().retainedSpans();
}

TEST(WorldTrace, SampledReservoirIdenticalAcrossBackends) {
  const auto fiber = sampledRun(sim::ExecBackend::Fiber);
  const auto thread = sampledRun(sim::ExecBackend::Thread);
  ASSERT_FALSE(fiber.empty());
  ASSERT_EQ(fiber.size(), thread.size());
  for (std::size_t i = 0; i < fiber.size(); ++i) {
    EXPECT_EQ(fiber[i].rank, thread[i].rank);
    EXPECT_EQ(fiber[i].kind, thread[i].kind);
    EXPECT_DOUBLE_EQ(fiber[i].begin, thread[i].begin);
    EXPECT_DOUBLE_EQ(fiber[i].end, thread[i].end);
    EXPECT_EQ(fiber[i].peer, thread[i].peer);
    EXPECT_EQ(fiber[i].bytes, thread[i].bytes);
  }
}

// ---------------------------------------------------------------------------
// Link telemetry, critical path and sharded exporter identity
// ---------------------------------------------------------------------------

mpi::WorldConfig shardableConfig(int shards,
                                 sim::ExecBackend backend =
                                     sim::ExecBackend::Fiber) {
  mpi::WorldConfig cfg = tegraConfig();
  cfg.simBackend = backend;
  cfg.topology.nodesPerLeafSwitch = 2;  // tiny leaves force real sharding
  cfg.simShards = shards;
  return cfg;
}

TEST(WorldLinks, TelemetryCountsTransfersAndIsShardInvariant) {
  const auto run = [](int shards, bool telemetry) {
    mpi::WorldConfig cfg = shardableConfig(shards);
    cfg.linkTelemetry = telemetry;
    mpi::MpiWorld world(cfg, 8);
    return world.run(commHeavyBody);
  };
  const auto base = run(1, true);
  ASSERT_TRUE(base.linkStats.any());
  EXPECT_GT(base.linkStats.uplink.transfers, 0u);
  EXPECT_GT(base.linkStats.uplink.busySeconds, 0.0);
  EXPECT_GT(base.linkStats.uplink.bytes, 0.0);
  // Every transfer climbs one uplink and descends one downlink.
  EXPECT_EQ(base.linkStats.uplink.transfers,
            base.linkStats.downlink.transfers);
  EXPECT_EQ(base.linkStats.uplink.queueDelay.total(),
            base.linkStats.uplink.transfers);
  EXPECT_LE(base.linkStats.uplink.maxLinkBusySeconds,
            base.linkStats.uplink.busySeconds);
  // Fabric occupancy happens at canonical wire-scheduling points only, so
  // the counters are exactly shard-invariant, not merely close.
  for (int shards : {2, 4}) {
    const auto got = run(shards, true);
    EXPECT_EQ(got.linkStats.uplink.transfers,
              base.linkStats.uplink.transfers);
    EXPECT_DOUBLE_EQ(got.linkStats.uplink.busySeconds,
                     base.linkStats.uplink.busySeconds);
    EXPECT_DOUBLE_EQ(got.linkStats.core.queueSeconds,
                     base.linkStats.core.queueSeconds);
    EXPECT_DOUBLE_EQ(got.linkStats.downlink.maxLinkBusySeconds,
                     base.linkStats.downlink.maxLinkBusySeconds);
    for (int b = 0; b < obs::DurationHistogram::kBuckets; ++b) {
      EXPECT_EQ(got.linkStats.uplink.queueDelay.counts[
                    static_cast<std::size_t>(b)],
                base.linkStats.uplink.queueDelay.counts[
                    static_cast<std::size_t>(b)]);
    }
  }
  // Telemetry off: same simulation, empty counters.
  const auto off = run(1, false);
  EXPECT_FALSE(off.linkStats.any());
  EXPECT_DOUBLE_EQ(off.wallClockSeconds, base.wallClockSeconds);
}

TEST(CriticalPath, DecomposesWallClockExactly) {
  mpi::MpiWorld world(shardableConfig(1), 8);
  const auto stats = world.run(commHeavyBody);
  const obs::CriticalPath& path = stats.criticalPath;
  EXPECT_GE(path.endRank, 0);
  EXPECT_LT(path.endRank, 8);
  EXPECT_GT(path.edges, 0u);
  EXPECT_GT(path.computeSeconds, 0.0);
  EXPECT_GT(path.sendSeconds + path.recvSeconds, 0.0);
  // waitSeconds is defined as the residual, so the decomposition covers
  // the wall clock up to FP rounding of the segment sums (the residual is
  // clamped at zero, so a chain that over-accounts by an ulp shows up as
  // length > wallClock by that ulp).
  EXPECT_NEAR(path.lengthSeconds(), stats.wallClockSeconds,
              1e-12 * stats.wallClockSeconds);
}

TEST(CriticalPath, IdenticalAcrossShardsAndBackends) {
  const auto run = [](sim::ExecBackend backend, int shards) {
    mpi::MpiWorld world(shardableConfig(shards, backend), 8);
    return world.run(commHeavyBody).criticalPath;
  };
  const obs::CriticalPath base = run(sim::ExecBackend::Fiber, 1);
  for (const auto backend :
       {sim::ExecBackend::Fiber, sim::ExecBackend::Thread}) {
    for (int shards : {1, 2, 4}) {
      const obs::CriticalPath got = run(backend, shards);
      EXPECT_EQ(got.endRank, base.endRank);
      EXPECT_EQ(got.edges, base.edges);
      EXPECT_DOUBLE_EQ(got.computeSeconds, base.computeSeconds);
      EXPECT_DOUBLE_EQ(got.sendSeconds, base.sendSeconds);
      EXPECT_DOUBLE_EQ(got.recvSeconds, base.recvSeconds);
      EXPECT_DOUBLE_EQ(got.linkSeconds, base.linkSeconds);
      EXPECT_DOUBLE_EQ(got.waitSeconds, base.waitSeconds);
    }
  }
}

std::pair<std::string, std::string> shardedArtefacts(
    sim::ExecBackend backend, int shards) {
  mpi::WorldConfig cfg = shardableConfig(shards, backend);
  cfg.traceMode = TraceMode::Sampled;
  cfg.traceReservoirPerRank = 16;
  cfg.traceSeed = 7;
  mpi::MpiWorld world(cfg, 8);
  world.enableTracing();
  const auto stats = world.run(commHeavyBody);
  const std::string prv =
      world.tracer().exportPrv(8, stats.wallClockSeconds);
  const std::string breakdown = obs::exportBreakdownCsv(
      world.tracer().summarize(8, stats.wallClockSeconds));
  return {prv, breakdown};
}

TEST(Exporters, ShardedRunsExportByteIdenticalArtefacts) {
  for (const auto backend :
       {sim::ExecBackend::Fiber, sim::ExecBackend::Thread}) {
    const auto base = shardedArtefacts(backend, 1);
    ASSERT_EQ(base.first.rfind("#Paraver", 0), 0u);
    ASSERT_NE(base.second.find("rank,compute_s"), std::string::npos);
    for (int shards : {2, 8}) {
      const auto got = shardedArtefacts(backend, shards);
      EXPECT_EQ(got.first, base.first)
          << "prv differs: backend=" << sim::toString(backend)
          << " shards=" << shards;
      EXPECT_EQ(got.second, base.second)
          << "breakdown differs: backend=" << sim::toString(backend)
          << " shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

TEST(StallReport, ScopedOverrideRestoresPrevious) {
  const bool before = obs::defaultStallReport();
  {
    obs::ScopedStallReport scoped(true);
    EXPECT_TRUE(obs::defaultStallReport());
    mpi::WorldConfig cfg;  // snapshots the default at construction
    EXPECT_TRUE(cfg.stallReport);
  }
  EXPECT_EQ(obs::defaultStallReport(), before);
}

TEST(StallReport, FormatSortsByRankAndRendersWildcards) {
  obs::StallEntry late;
  late.rank = 3;
  late.node = 1;
  late.op = "recv";
  late.peer = -1;  // kAnySource
  late.tag = -1;   // kAnyTag
  late.comm = 7;
  late.blockedSince = 0.5;
  obs::StallEntry early;
  early.rank = 0;
  early.node = 0;
  early.op = "rendezvous-send";
  early.peer = 2;
  early.tag = 9;
  early.blockedSince = 0.25;
  early.lastSpans.push_back(TraceSpan{0, SpanKind::Compute, 0.0, 0.25, -1, 0});
  const std::string report = obs::formatStallReport({late, early}, 1.0);
  EXPECT_EQ(report,
            "stall report: 2 rank(s) blocked at t=1s\n"
            "  rank 0 node 0: rendezvous-send(peer=2, tag=9) comm=0 "
            "blocked 0.75s since t=0.25s\n"
            "    recent: compute[0s..0.25s]\n"
            "  rank 3 node 1: recv(peer=*, tag=*) comm=7 "
            "blocked 0.5s since t=0.5s\n");
}

TEST(Imb, StatsHookSeesEveryWorld) {
  const auto cfg = tegraConfig();
  int calls = 0;
  std::uint64_t messages = 0;
  const mpi::imb::StatsHook hook = [&](const mpi::WorldStats& stats) {
    ++calls;
    messages += stats.messageCount;
  };
  mpi::imb::pingPong(cfg, {64, 1024}, 2, hook);
  EXPECT_EQ(calls, 2);  // one world per message size
  EXPECT_GT(messages, 0u);
  calls = 0;
  mpi::imb::barrier(cfg, 8, 2, hook);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Fiber stack telemetry
// ---------------------------------------------------------------------------

TEST(StackTelemetry, HighWaterWithinConfiguredStack) {
  mpi::WorldConfig cfg = tegraConfig();
  cfg.simBackend = sim::ExecBackend::Fiber;
  cfg.fiberStackBytes = 64 * 1024;
  mpi::MpiWorld world(cfg, 4);
  const auto stats = world.run(commHeavyBody);
  EXPECT_EQ(stats.engine.fiberStackBytes, 64u * 1024u);
  EXPECT_GT(stats.engine.stackHighWaterBytes, 0u);
  EXPECT_LE(stats.engine.stackHighWaterBytes, 64u * 1024u);
}

TEST(StackTelemetry, ThreadBackendReportsNone) {
  mpi::WorldConfig cfg = tegraConfig();
  cfg.simBackend = sim::ExecBackend::Thread;
  cfg.fiberStackBytes = 64 * 1024;  // ignored by the thread backend
  mpi::MpiWorld world(cfg, 2);
  const auto stats = world.run([](mpi::MpiContext& ctx) {
    ctx.computeSeconds(1e-3);
    ctx.barrier();
  });
  EXPECT_EQ(stats.engine.fiberStackBytes, 0u);
  EXPECT_EQ(stats.engine.stackHighWaterBytes, 0u);
}

// Burn stack frames with a volatile local so the frames cannot be elided;
// the result depends on the recursion so the call cannot be a tail call.
int burnStack(int depth) {
  volatile char buffer[256];
  buffer[0] = static_cast<char>(depth);
  if (depth <= 0) return buffer[0];
  return burnStack(depth - 1) + buffer[0];
}

std::size_t highWaterAtDepth(int depth) {
  sim::Simulation sim(sim::ExecBackend::Fiber, 256 * 1024);
  sim.spawn("burner", [depth](sim::Process&) { burnStack(depth); });
  sim.run();
  return sim.engineStats().stackHighWaterBytes;
}

TEST(StackTelemetry, HighWaterGrowsWithRecursionDepth) {
  const std::size_t shallow = highWaterAtDepth(4);
  const std::size_t deep = highWaterAtDepth(96);
  EXPECT_GT(shallow, 0u);
  EXPECT_GT(deep, shallow);
  // ~92 extra frames each holding a 256-byte buffer; exact frame size is
  // the compiler's business, so only require the bulk of that growth.
  EXPECT_GE(deep - shallow, 92u * 192u);
}

TEST(StackTelemetry, SubSixtyFourKiBStackChosenFromReportedHighWater) {
  // Big-cluster-style job: probe with the default stack, then rerun with a
  // sub-64 KiB stack sized from the reported high-water mark. This is the
  // measurement that justifies shrinking per-rank stacks at 2048+ ranks.
  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidaboScaled(16);
  const auto body = [](mpi::MpiContext& ctx) {
    ctx.computeSeconds(1e-3);
    ctx.neighborExchange(4096, 1);
    ctx.allreduceSum(static_cast<double>(ctx.rank()));
    ctx.barrier();
  };
  cluster::ClusterSimulation probeSim(spec);
  const cluster::JobResult probe = probeSim.runJob(16, body);

  std::size_t stackBytes = 16 * 1024;  // the engine's minimum
  if (probe.stats.engine.stackHighWaterBytes > 0) {
    // Round the observed high water up to 4 KiB and double it for margin.
    const std::size_t hwm = probe.stats.engine.stackHighWaterBytes;
    stackBytes = std::max<std::size_t>(stackBytes, ((hwm + 4095) / 4096) * 4096 * 2);
  }
  ASSERT_LT(stackBytes, 64u * 1024u)
      << "reported high water " << probe.stats.engine.stackHighWaterBytes;

  cluster::ClusterSimulation sim(spec);
  cluster::JobOptions options;
  options.fiberStackBytes = stackBytes;
  const cluster::JobResult rerun = sim.runJob(16, body, options);
  EXPECT_DOUBLE_EQ(rerun.wallClockSeconds, probe.wallClockSeconds);
  EXPECT_LE(rerun.stats.engine.stackHighWaterBytes, stackBytes);
  if (rerun.stats.engine.fiberStackBytes > 0)
    EXPECT_EQ(rerun.stats.engine.fiberStackBytes, stackBytes);
}

}  // namespace
