// Tests for the Energy Efficient Ethernet model and the SLURM-style batch
// scheduler.

#include <gtest/gtest.h>

#include "tibsim/cluster/slurm.hpp"
#include "tibsim/cluster/software_stack.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/net/eee.hpp"

namespace tibsim {
namespace {

// ---- EEE -------------------------------------------------------------------

TEST(Eee, NoWakePenaltyForBackToBackTraffic) {
  const net::EnergyEfficientEthernet eee;
  EXPECT_DOUBLE_EQ(eee.addedLatencySeconds(1e-6), 0.0);
  EXPECT_DOUBLE_EQ(eee.addedLatencySeconds(100e-6), 0.0);  // < entry+sleep
}

TEST(Eee, WakePenaltyAfterLongGaps) {
  const net::EnergyEfficientEthernet eee;
  EXPECT_DOUBLE_EQ(eee.addedLatencySeconds(1.0), eee.config().wakeSeconds);
  EXPECT_DOUBLE_EQ(eee.addedLatencySeconds(300e-6),
                   eee.config().wakeSeconds);
}

TEST(Eee, DisabledMeansNoPenaltyAndNoSaving) {
  net::EnergyEfficientEthernet::Config cfg;
  cfg.enabled = false;
  const net::EnergyEfficientEthernet eee(cfg);
  EXPECT_DOUBLE_EQ(eee.addedLatencySeconds(1.0), 0.0);
  EXPECT_DOUBLE_EQ(eee.energySavingFraction(10e-6, 1.0), 0.0);
}

TEST(Eee, SavingGrowsWithIdleTime) {
  const net::EnergyEfficientEthernet eee;
  const double wire = 12e-6;  // one 1500 B frame
  double prev = -1.0;
  for (double interval : {1e-3, 1e-2, 1e-1, 1.0}) {
    const double saving = eee.energySavingFraction(wire, interval);
    EXPECT_GT(saving, prev);
    prev = saving;
  }
  // Asymptotically approaches 1 - lpiFraction.
  EXPECT_NEAR(prev, 1.0 - eee.config().lpiPowerFraction, 0.01);
}

TEST(Eee, NoSavingForSaturatedLink) {
  const net::EnergyEfficientEthernet eee;
  EXPECT_NEAR(eee.energySavingFraction(99e-6, 100e-6), 0.0, 1e-9);
}

TEST(Eee, EffectiveLatencyAddsWakeForSparseTraffic) {
  const net::EnergyEfficientEthernet eee;
  const double base = 100e-6;
  EXPECT_DOUBLE_EQ(eee.effectiveLatencySeconds(base, 50e-6), base);
  EXPECT_DOUBLE_EQ(eee.effectiveLatencySeconds(base, 10e-3),
                   base + eee.config().wakeSeconds);
}

// ---- SLURM ------------------------------------------------------------------

cluster::BatchJob job(const std::string& name, int nodes, double duration,
                      double submit = 0.0, double requested = 0.0) {
  cluster::BatchJob j;
  j.name = name;
  j.nodes = nodes;
  j.durationSeconds = duration;
  j.requestedSeconds = requested;
  j.submitSeconds = submit;
  return j;
}

TEST(Slurm, SingleJobRunsImmediately) {
  cluster::SlurmScheduler slurm(16);
  slurm.submit(job("a", 8, 100.0));
  const auto result = slurm.schedule();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].startSeconds, 0.0);
  EXPECT_DOUBLE_EQ(result.makespanSeconds, 100.0);
  EXPECT_NEAR(result.nodeUtilization, 0.5, 1e-9);
}

TEST(Slurm, FcfsOrderRespected) {
  cluster::SlurmScheduler slurm(10, /*enableBackfill=*/false);
  slurm.submit(job("a", 10, 50.0));
  slurm.submit(job("b", 10, 50.0));
  slurm.submit(job("c", 10, 50.0));
  const auto result = slurm.schedule();
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(result.jobs[0].startSeconds, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].startSeconds, 50.0);
  EXPECT_DOUBLE_EQ(result.jobs[2].startSeconds, 100.0);
  EXPECT_DOUBLE_EQ(result.makespanSeconds, 150.0);
  EXPECT_EQ(result.backfilledJobs, 0);
}

TEST(Slurm, ParallelJobsSharePartition) {
  cluster::SlurmScheduler slurm(16);
  slurm.submit(job("a", 8, 100.0));
  slurm.submit(job("b", 8, 100.0));
  const auto result = slurm.schedule();
  EXPECT_DOUBLE_EQ(result.makespanSeconds, 100.0);
  EXPECT_NEAR(result.nodeUtilization, 1.0, 1e-9);
}

TEST(Slurm, EasyBackfillFillsTheHole) {
  // a occupies 12/16 nodes; b (head of queue, 16 nodes) must wait for a;
  // c needs 4 nodes and finishes before a's requested end => backfills.
  cluster::SlurmScheduler slurm(16);
  slurm.submit(job("a", 12, 100.0));
  slurm.submit(job("b", 16, 50.0));
  slurm.submit(job("c", 4, 80.0));
  const auto result = slurm.schedule();
  ASSERT_EQ(result.jobs.size(), 3u);
  // c started at t=0 alongside a.
  const auto& c = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                [](const auto& s) {
                                  return s.job.name == "c";
                                });
  EXPECT_DOUBLE_EQ(c.startSeconds, 0.0);
  EXPECT_EQ(result.backfilledJobs, 1);
  // b still starts exactly when a ends (backfill did not delay the head).
  const auto& b = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                [](const auto& s) {
                                  return s.job.name == "b";
                                });
  EXPECT_DOUBLE_EQ(b.startSeconds, 100.0);
}

TEST(Slurm, BackfillNeverDelaysQueueHead) {
  // Candidate d would outlast the head's reservation AND needs nodes the
  // reservation requires => must not backfill.
  cluster::SlurmScheduler slurm(16);
  slurm.submit(job("a", 12, 100.0));
  slurm.submit(job("b", 16, 50.0));
  slurm.submit(job("d", 4, 200.0));
  const auto result = slurm.schedule();
  const auto& b = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                [](const auto& s) {
                                  return s.job.name == "b";
                                });
  EXPECT_DOUBLE_EQ(b.startSeconds, 100.0);
  const auto& d = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                [](const auto& s) {
                                  return s.job.name == "d";
                                });
  EXPECT_GE(d.startSeconds, b.endSeconds);
  EXPECT_EQ(result.backfilledJobs, 0);
}

TEST(Slurm, EarlyCompletionReleasesNodesEarly) {
  // a requests 1000 s but finishes in 10: b must start at 10, not 1000.
  cluster::SlurmScheduler slurm(8);
  slurm.submit(job("a", 8, 10.0, 0.0, /*requested=*/1000.0));
  slurm.submit(job("b", 8, 10.0));
  const auto result = slurm.schedule();
  const auto& b = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                [](const auto& s) {
                                  return s.job.name == "b";
                                });
  EXPECT_DOUBLE_EQ(b.startSeconds, 10.0);
}

TEST(Slurm, LateSubmissionsWaitForArrival) {
  cluster::SlurmScheduler slurm(8);
  slurm.submit(job("late", 2, 5.0, /*submit=*/100.0));
  const auto result = slurm.schedule();
  EXPECT_DOUBLE_EQ(result.jobs[0].startSeconds, 100.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].waitSeconds(), 0.0);
}

TEST(Slurm, WaitStatisticsComputed) {
  cluster::SlurmScheduler slurm(4, false);
  slurm.submit(job("a", 4, 100.0));
  slurm.submit(job("b", 4, 100.0));
  const auto result = slurm.schedule();
  EXPECT_DOUBLE_EQ(result.maxWaitSeconds, 100.0);
  EXPECT_DOUBLE_EQ(result.averageWaitSeconds, 50.0);
}

TEST(Slurm, EnergyEstimatePositiveAndBusyDominated) {
  cluster::SlurmScheduler slurm(16);
  slurm.submit(job("a", 16, 100.0));
  const auto result = slurm.schedule();
  const auto spec = cluster::ClusterSpec::tibidabo();
  const double energy =
      cluster::SlurmScheduler::estimateEnergyJ(result, spec, 16);
  // 16 fully busy Tegra2 nodes for 100 s at ~7-10 W each.
  EXPECT_GT(energy, 16 * 100.0 * 6.0);
  EXPECT_LT(energy, 16 * 100.0 * 12.0);
}

TEST(Slurm, RejectsInvalidJobs) {
  cluster::SlurmScheduler slurm(4);
  EXPECT_THROW(slurm.submit(job("big", 5, 10.0)), ContractError);
  EXPECT_THROW(slurm.submit(job("zero", 1, 0.0)), ContractError);
  EXPECT_THROW(slurm.submit(job("lie", 1, 10.0, 0.0, 5.0)), ContractError);
}

// ---- Software stack (Figure 8) ----------------------------------------------

TEST(SoftwareStack, CoversEveryLayer) {
  for (auto layer : {cluster::StackLayer::Compiler,
                     cluster::StackLayer::RuntimeLibrary,
                     cluster::StackLayer::ScientificLibrary,
                     cluster::StackLayer::PerformanceTool,
                     cluster::StackLayer::Debugger,
                     cluster::StackLayer::ClusterManagement,
                     cluster::StackLayer::OperatingSystem}) {
    EXPECT_FALSE(cluster::componentsAt(layer).empty()) << toString(layer);
  }
}

TEST(SoftwareStack, Figure8ComponentsPresent) {
  bool slurm = false, atlas = false, openMx = false;
  for (const auto& c : cluster::softwareStack()) {
    if (c.name.find("SLURM") != std::string::npos) slurm = true;
    if (c.name.find("ATLAS") != std::string::npos) {
      atlas = true;
      // Section 5: ATLAS required source modifications.
      EXPECT_EQ(c.support, cluster::ArmSupport::PortedByTeam);
    }
    if (c.name.find("Open-MX") != std::string::npos) openMx = true;
  }
  EXPECT_TRUE(slurm);
  EXPECT_TRUE(atlas);
  EXPECT_TRUE(openMx);
}

TEST(SoftwareStack, MostOfTheStackJustWorks) {
  // The Section 5 claim: the ARM software stack is essentially complete.
  EXPECT_GT(cluster::fullSupportFraction(), 0.6);
  EXPECT_LT(cluster::fullSupportFraction(), 1.0);  // CUDA/OpenCL caveats
}

}  // namespace
}  // namespace tibsim
