// Tests for the Paraver-style tracer and the IMB benchmark suite.

#include <gtest/gtest.h>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/mpi/imb.hpp"
#include "tibsim/mpi/trace.hpp"

namespace tibsim::mpi {
namespace {

using namespace units;

WorldConfig twoNodeConfig() {
  WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = ghz(1.0);
  cfg.protocol = net::Protocol::TcpIp;
  cfg.ranksPerNode = 1;
  return cfg;
}

// ---- Tracer -----------------------------------------------------------------

TEST(Tracer, RecordsNothingWhenDisabled) {
  MpiWorld world(twoNodeConfig(), 2);
  world.run([](MpiContext& ctx) { ctx.computeSeconds(0.01); });
  EXPECT_TRUE(world.tracer().empty());
}

TEST(Tracer, ComputeSpansCoverComputeTime) {
  MpiWorld world(twoNodeConfig(), 2);
  world.enableTracing();
  const auto stats = world.run([](MpiContext& ctx) {
    ctx.computeSeconds(0.02);
    ctx.computeSeconds(0.03);
  });
  const auto summaries = world.tracer().summarize(2, stats.wallClockSeconds);
  for (const auto& s : summaries) {
    EXPECT_NEAR(s.computeSeconds, 0.05, 1e-9);
    EXPECT_DOUBLE_EQ(s.sendSeconds, 0.0);
  }
}

TEST(Tracer, MessageProducesSendRecvAndWaitSpans) {
  MpiWorld world(twoNodeConfig(), 2);
  world.enableTracing();
  const auto stats = world.run([](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, 1024);
    } else {
      ctx.recv(0, 1);
    }
  });
  const auto summaries = world.tracer().summarize(2, stats.wallClockSeconds);
  EXPECT_GT(summaries[0].sendSeconds, 0.0);
  EXPECT_GT(summaries[1].recvSeconds, 0.0);
  EXPECT_GT(summaries[1].waitSeconds, 0.0);  // receiver entered recv first
  // Span kinds carry peer and byte information.
  bool foundSend = false;
  for (const auto& span : world.tracer().retainedSpans()) {
    if (span.kind == SpanKind::Send) {
      foundSend = true;
      EXPECT_EQ(span.rank, 0);
      EXPECT_EQ(span.peer, 1);
      EXPECT_EQ(span.bytes, 1024u);
    }
  }
  EXPECT_TRUE(foundSend);
}

TEST(Tracer, NonComputeFractionReflectsCommHeaviness) {
  auto fraction = [](double computeSeconds) {
    MpiWorld world(twoNodeConfig(), 2);
    world.enableTracing();
    const auto stats = world.run([computeSeconds](MpiContext& ctx) {
      for (int i = 0; i < 4; ++i) {
        ctx.computeSeconds(computeSeconds);
        ctx.sendrecv(1 - ctx.rank(), 1, 4096);
      }
    });
    return world.tracer().nonComputeFraction(2, stats.wallClockSeconds);
  };
  EXPECT_GT(fraction(1e-4), fraction(1e-1));  // less compute => more comm
  EXPECT_LT(fraction(1e-1), 0.10);
}

TEST(Tracer, CsvExportHasHeaderAndRows) {
  Tracer tracer;
  tracer.record(TraceSpan{0, SpanKind::Compute, 0.0, 1.0, -1, 0});
  tracer.record(TraceSpan{1, SpanKind::Send, 1.0, 1.5, 0, 64});
  const std::string csv = tracer.exportCsv();
  EXPECT_NE(csv.find("rank,kind,begin,end,peer,bytes"), std::string::npos);
  EXPECT_NE(csv.find("1,send,1,1.5,0,64"), std::string::npos);
}

TEST(Tracer, SummariesAccountForWholeTimeline) {
  MpiWorld world(twoNodeConfig(), 2);
  world.enableTracing();
  const auto stats = world.run([](MpiContext& ctx) {
    ctx.computeSeconds(0.01);
    ctx.barrier();
  });
  for (const auto& s : world.tracer().summarize(2, stats.wallClockSeconds)) {
    const double covered = s.computeSeconds + s.sendSeconds +
                           s.recvSeconds + s.waitSeconds + s.otherSeconds;
    EXPECT_NEAR(covered, stats.wallClockSeconds, 1e-9);
  }
}

// ---- IMB suite ----------------------------------------------------------------

TEST(Imb, MessageSizeLadder) {
  const auto sizes = imb::messageSizes(4096);
  EXPECT_EQ(sizes.front(), 0u);
  EXPECT_EQ(sizes.back(), 4096u);
  for (std::size_t i = 2; i < sizes.size(); ++i)
    EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
}

TEST(Imb, PingPongMatchesProtocolModel) {
  const auto cfg = twoNodeConfig();
  const auto results = imb::pingPong(cfg, {1}, 8);
  const net::ProtocolModel model(cfg.protocol, cfg.platform,
                                 cfg.frequencyHz);
  EXPECT_NEAR(results[0].seconds, model.pingPongLatency(1),
              0.15 * model.pingPongLatency(1));
}

TEST(Imb, PingPingNoSlowerThanTwicePingPong) {
  const auto cfg = twoNodeConfig();
  const auto pong = imb::pingPong(cfg, {1024}, 4);
  const auto ping = imb::pingPing(cfg, {1024}, 4);
  EXPECT_GE(ping[0].seconds, pong[0].seconds * 0.9);
  EXPECT_LE(ping[0].seconds, pong[0].seconds * 2.5);
}

TEST(Imb, ExchangeTimeGrowsWithMessageSize) {
  const auto cfg = twoNodeConfig();
  const auto results = imb::exchange(cfg, 8, {64, 65536}, 2);
  EXPECT_GT(results[1].seconds, results[0].seconds);
}

TEST(Imb, AllreduceGrowsWithRanks) {
  const auto cfg = twoNodeConfig();
  const auto small = imb::allreduce(cfg, 4, {8}, 2);
  const auto large = imb::allreduce(cfg, 32, {8}, 2);
  EXPECT_GT(large[0].seconds, small[0].seconds);
}

TEST(Imb, BarrierScalesLogarithmically) {
  const auto cfg = twoNodeConfig();
  const double b2 = imb::barrier(cfg, 2).seconds;
  const double b32 = imb::barrier(cfg, 32).seconds;
  const double b128 = imb::barrier(cfg, 128).seconds;
  EXPECT_GT(b32, b2);
  EXPECT_GT(b128, b32);
  // Dissemination barrier: cost ~ ceil(log2 n) rounds, far from linear.
  EXPECT_LT(b128, b2 * 10.0);
}

TEST(Imb, BcastFasterThanAllreduceForSamePayload) {
  const auto cfg = twoNodeConfig();
  const auto bc = imb::bcast(cfg, 16, {1024}, 2);
  const auto ar = imb::allreduce(cfg, 16, {1024}, 2);
  EXPECT_LT(bc[0].seconds, ar[0].seconds);
}

}  // namespace
}  // namespace tibsim::mpi
