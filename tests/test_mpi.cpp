// Tests for simMPI: point-to-point semantics, payload integrity, tag
// matching, rendezvous, collectives, deadlock detection, accounting.
// Every suite runs under both ExecutionContext backends — simMPI semantics
// are backend-independent by contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <tuple>
#include <utility>

#include "tibsim/apps/taskfarm.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/mpi/payload_pool.hpp"
#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/sim/execution_context.hpp"

namespace tibsim::mpi {
namespace {

using namespace units;

WorldConfig testConfig(int ranksPerNode = 1,
                       net::Protocol proto = net::Protocol::TcpIp) {
  WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = ghz(1.0);
  cfg.protocol = proto;
  cfg.ranksPerNode = ranksPerNode;
  return cfg;
}

// WorldConfig snapshots the process-wide default backend at construction;
// pinning the default per test keeps every MpiWorld below on the requested
// backend without touching the test bodies.
class SimMpiTest : public ::testing::TestWithParam<sim::ExecBackend> {
 protected:
  sim::ScopedExecBackend scoped_{GetParam()};
};

#define TIBSIM_INSTANTIATE_BACKENDS(fixture)                          \
  INSTANTIATE_TEST_SUITE_P(Backends, fixture,                         \
                           ::testing::Values(sim::ExecBackend::Fiber, \
                                             sim::ExecBackend::Thread), \
                           [](const auto& paramInfo) {                \
                             return std::string(                      \
                                 sim::toString(paramInfo.param));     \
                           })

class SimMpiNonblockingTest : public SimMpiTest {};
class SimMpiCollectivesTest : public SimMpiTest {};
class SimMpiCollectiveVerifyTest : public SimMpiTest {};
TIBSIM_INSTANTIATE_BACKENDS(SimMpiTest);
TIBSIM_INSTANTIATE_BACKENDS(SimMpiNonblockingTest);
TIBSIM_INSTANTIATE_BACKENDS(SimMpiCollectivesTest);
TIBSIM_INSTANTIATE_BACKENDS(SimMpiCollectiveVerifyTest);

TEST_P(SimMpiTest, RankAndSizeVisible) {
  MpiWorld world(testConfig(), 4);
  std::vector<int> seen(4, -1);
  world.run([&](MpiContext& ctx) {
    seen[static_cast<std::size_t>(ctx.rank())] = ctx.size();
  });
  for (int s : seen) EXPECT_EQ(s, 4);
}

TEST_P(SimMpiTest, NodePlacementFollowsRanksPerNode) {
  MpiWorld world(testConfig(2), 6);
  EXPECT_EQ(world.nodes(), 3);
  std::vector<int> nodeOf(6, -1);
  world.run([&](MpiContext& ctx) {
    nodeOf[static_cast<std::size_t>(ctx.rank())] = ctx.node();
  });
  EXPECT_EQ(nodeOf, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST_P(SimMpiTest, PayloadRoundTrips) {
  MpiWorld world(testConfig(), 2);
  std::vector<double> received;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<double> data = {1.5, -2.25, 3.75};
      ctx.sendDoubles(1, 42, data);
    } else {
      received = ctx.recvDoubles(0, 42);
    }
  });
  EXPECT_EQ(received, (std::vector<double>{1.5, -2.25, 3.75}));
}

TEST_P(SimMpiTest, SizeOnlyMessagesReportBytes) {
  MpiWorld world(testConfig(), 2);
  std::size_t got = 0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, 123456);
    } else {
      const auto payload = ctx.recv(0, 1, &got);
      EXPECT_TRUE(payload.empty());
    }
  });
  EXPECT_EQ(got, 123456u);
}

TEST_P(SimMpiTest, TagMatchingSelectsCorrectMessage) {
  MpiWorld world(testConfig(), 2);
  std::vector<double> first, second;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.sendDoubles(1, /*tag=*/7, std::vector<double>{7.0});
      ctx.sendDoubles(1, /*tag=*/8, std::vector<double>{8.0});
    } else {
      // Receive in the opposite order from the sends.
      second = ctx.recvDoubles(0, 8);
      first = ctx.recvDoubles(0, 7);
    }
  });
  EXPECT_EQ(first, std::vector<double>{7.0});
  EXPECT_EQ(second, std::vector<double>{8.0});
}

TEST_P(SimMpiTest, FifoPerSourceAndTag) {
  MpiWorld world(testConfig(), 2);
  std::vector<double> order;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i)
        ctx.sendDoubles(1, 3, std::vector<double>{static_cast<double>(i)});
    } else {
      for (int i = 0; i < 5; ++i)
        order.push_back(ctx.recvDoubles(0, 3)[0]);
    }
  });
  EXPECT_EQ(order, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST_P(SimMpiTest, MessagesTakeSimulatedTime) {
  MpiWorld world(testConfig(), 2);
  double recvDone = 0.0;
  const auto stats = world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, 64);
    } else {
      ctx.recv(0, 1);
      recvDone = ctx.now();
    }
  });
  // One small TCP message on Tegra2 @ 1 GHz: ~100 us one-way.
  EXPECT_GT(recvDone, 50e-6);
  EXPECT_LT(recvDone, 200e-6);
  EXPECT_EQ(stats.messageCount, 1u);
}

TEST_P(SimMpiTest, RendezvousLargeMessageCompletes) {
  MpiWorld world(testConfig(1, net::Protocol::OpenMx), 2);
  const std::size_t big = 256 * 1024;  // > 32 KiB threshold
  std::size_t got = 0;
  double senderDone = 0.0, receiverDone = 0.0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 5, big);
      senderDone = ctx.now();
    } else {
      ctx.computeSeconds(0.01);  // receiver arrives late: RTS must wait
      ctx.recv(0, 5, &got);
      receiverDone = ctx.now();
    }
  });
  EXPECT_EQ(got, big);
  // Rendezvous: the sender cannot complete before the receiver showed up.
  EXPECT_GT(senderDone, 0.01);
  EXPECT_GT(receiverDone, senderDone * 0.5);
}

TEST_P(SimMpiTest, RendezvousBothDirectionsViaSendrecv) {
  MpiWorld world(testConfig(1, net::Protocol::OpenMx), 2);
  const std::size_t big = 128 * 1024;
  world.run([&](MpiContext& ctx) {
    const int peer = 1 - ctx.rank();
    ctx.sendrecv(peer, 9, big);
  });
  SUCCEED();  // completing without deadlock is the assertion
}

TEST_P(SimMpiTest, SameNodeMessagesAreFast) {
  MpiWorld world(testConfig(2), 2);  // both ranks on node 0
  double elapsed = 0.0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, 1024);
    } else {
      ctx.recv(0, 1);
      elapsed = ctx.now();
    }
  });
  EXPECT_LT(elapsed, 20e-6);  // shared memory, no NIC
}

TEST_P(SimMpiTest, DeadlockIsDetected) {
  MpiWorld world(testConfig(), 2);
  EXPECT_THROW(world.run([](MpiContext& ctx) {
    // Both ranks receive first: classic deadlock.
    ctx.recv(1 - ctx.rank(), 1);
  }),
               ContractError);
}

TEST_P(SimMpiTest, DeadlockWithoutWatchdogPointsAtTheFlag) {
  MpiWorld world(testConfig(), 2);
  try {
    world.run([](MpiContext& ctx) { ctx.recv(1 - ctx.rank(), 1); });
    FAIL() << "deadlock not detected";
  } catch (const ContractError& error) {
    EXPECT_NE(std::string(error.what()).find("--stall-report"),
              std::string::npos)
        << error.what();
  }
}

TEST_P(SimMpiTest, StallReportListsEveryBlockedRank) {
  // The report is derived from simulated state only, so the exact lines
  // can be pinned: identical on both backends and any shard count.
  obs::ScopedStallReport scoped(true);
  MpiWorld world(testConfig(), 4);
  try {
    world.run([](MpiContext& ctx) {
      // Every rank receives from its left neighbour first: a 4-cycle.
      ctx.recv((ctx.rank() + 1) % ctx.size(), 7);
    });
    FAIL() << "deadlock not detected";
  } catch (const ContractError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("stall report: 4 rank(s) blocked at t=0s"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 0 node 0: recv(peer=1, tag=7)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 3 node 3: recv(peer=0, tag=7)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("blocked 0s since t=0s"), std::string::npos) << what;
  }
}

TEST_P(SimMpiTest, StallReportCoversRendezvousSenders) {
  // A rendezvous send with no matching receive blocks on the CTS; the
  // watchdog must attribute the stall to the send side, not the mailbox.
  obs::ScopedStallReport scoped(true);
  MpiWorld world(testConfig(1, net::Protocol::OpenMx), 2);
  try {
    world.run([](MpiContext& ctx) {
      if (ctx.rank() == 0) ctx.send(1, 5, 64 * 1024);
    });
    FAIL() << "deadlock not detected";
  } catch (const ContractError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("stall report: 1 rank(s) blocked"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 0 node 0: rendezvous-send(peer=1, tag=5)"),
              std::string::npos)
        << what;
  }
}

TEST_P(SimMpiTest, StallReportIsByteIdenticalAcrossShards) {
  obs::ScopedStallReport scoped(true);
  const auto report = [](int shards) {
    WorldConfig cfg = testConfig();
    cfg.topology.nodesPerLeafSwitch = 2;
    cfg.simShards = shards;
    MpiWorld world(cfg, 6);
    try {
      world.run([](MpiContext& ctx) {
        if (ctx.rank() < 3) {
          ctx.recv((ctx.rank() + 1) % 3, 9);  // 3-cycle among ranks 0..2
        } else {
          ctx.computeSeconds(1e-5 * ctx.rank());  // these ranks finish
        }
      });
    } catch (const ContractError& error) {
      // Strip the engine-specific TIB_REQUIRE prefix (expression and
      // file:line differ between the single-queue and sharded engines);
      // the report body itself must be byte-identical.
      const std::string what = error.what();
      const std::size_t at = what.find("stall report:");
      return at == std::string::npos ? what : what.substr(at);
    }
    return std::string();
  };
  const std::string base = report(1);
  ASSERT_NE(base.find("stall report: 3 rank(s) blocked"), std::string::npos)
      << base;
  EXPECT_EQ(report(2), base);
  EXPECT_EQ(report(3), base);
}

// ---- Runtime collective-matching verifier ---------------------------------

TEST_P(SimMpiCollectiveVerifyTest, CleanRunPassesAndCountsChecks) {
  WorldConfig cfg = testConfig();
  cfg.verifyCollectives = true;
  MpiWorld world(cfg, 4);
  const WorldStats stats = world.run([](MpiContext& ctx) {
    ctx.allreduceSum(1.0);
    ctx.barrier();
    ctx.bcastBytes(4096, 0);
  });
  EXPECT_GT(stats.collectiveChecks, 0u);
}

TEST_P(SimMpiCollectiveVerifyTest, OffByDefaultPerformsNoChecks) {
  MpiWorld world(testConfig(), 4);
  const WorldStats stats = world.run([](MpiContext& ctx) {
    ctx.allreduceSum(1.0);
    ctx.barrier();
  });
  EXPECT_EQ(stats.collectiveChecks, 0u);
}

TEST_P(SimMpiCollectiveVerifyTest, DivergentReduceOpIsReported) {
  WorldConfig cfg = testConfig();
  cfg.verifyCollectives = true;
  MpiWorld world(cfg, 4);
  try {
    world.run([](MpiContext& ctx) {
      Communicator comm = ctx.commWorld();
      // One rank votes with a sum while the others run a max — same tag
      // space, same message schedule, divergent stamps.
      if (ctx.rank() == 2) {
        comm.allreduce(1.0, ReduceOp::Sum);
      } else {
        comm.allreduce(1.0, ReduceOp::Max);
      }
    });
    FAIL() << "collective mismatch not detected";
  } catch (const ContractError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("collective mismatch on comm 0"), std::string::npos)
        << what;
    EXPECT_NE(what.find("op=sum"), std::string::npos) << what;
    EXPECT_NE(what.find("op=max"), std::string::npos) << what;
    EXPECT_NE(what.find("every rank of a communicator must run the same "
                        "collective sequence"),
              std::string::npos)
        << what;
  }
}

TEST_P(SimMpiCollectiveVerifyTest, CollectiveVsPointToPointIsReported) {
  WorldConfig cfg = testConfig();
  cfg.verifyCollectives = true;
  MpiWorld world(cfg, 2);
  try {
    world.run([](MpiContext& ctx) {
      // Rank 0's dissemination-barrier signal is stamped; rank 1 consumes
      // it with a plain receive on the reserved plumbing tag instead of
      // entering the barrier: a one-sided engagement.
      // Deliberate divergence: exactly what the lint rule exists to stop.
      if (ctx.rank() == 0) {  // tibsim-lint: allow(collective-match)
        ctx.barrier();
      } else {
        ctx.recv(0, 1 << 24);  // kBarrierTag round 0
      }
    });
    FAIL() << "collective mismatch not detected";
  } catch (const ContractError& error) {
    EXPECT_NE(std::string(error.what()).find("point-to-point traffic"),
              std::string::npos)
        << error.what();
  }
}

TEST_P(SimMpiCollectiveVerifyTest, MismatchReportIsByteIdenticalAcrossShards) {
  const auto report = [](int shards) {
    WorldConfig cfg = testConfig();
    cfg.verifyCollectives = true;
    cfg.topology.nodesPerLeafSwitch = 2;
    cfg.simShards = shards;
    MpiWorld world(cfg, 6);
    try {
      world.run([](MpiContext& ctx) {
        Communicator comm = ctx.commWorld();
        if (ctx.rank() == 3) {
          comm.allreduce(2.0, ReduceOp::Sum);
        } else {
          comm.allreduce(2.0, ReduceOp::Max);
        }
      });
    } catch (const ContractError& error) {
      // Strip the engine-specific TIB_REQUIRE prefix, as in the stall-
      // report test; the report body must be byte-identical.
      const std::string what = error.what();
      const std::size_t at = what.find("collective mismatch");
      return at == std::string::npos ? what : what.substr(at);
    }
    return std::string();
  };
  const std::string base = report(1);
  ASSERT_NE(base.find("collective mismatch on comm 0"), std::string::npos)
      << base;
  EXPECT_EQ(report(2), base);
  EXPECT_EQ(report(3), base);
}

TEST_P(SimMpiTest, RankExceptionsPropagate) {
  MpiWorld world(testConfig(), 2);
  EXPECT_THROW(world.run([](MpiContext& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank failure");
    ctx.computeSeconds(0.001);
  }),
               std::runtime_error);
}

TEST_P(SimMpiTest, ComputeAdvancesClockAndAccounts) {
  MpiWorld world(testConfig(), 1);
  const auto stats = world.run([&](MpiContext& ctx) {
    ctx.compute(perfmodel::WorkProfile{1e9, 0.0,
                                       perfmodel::AccessPattern::Resident,
                                       1.0, 1.0, 0.0});
  });
  EXPECT_GT(stats.wallClockSeconds, 1.0);  // 1 GFLOP at ~0.55 GFLOP/s
  EXPECT_DOUBLE_EQ(stats.totalFlops, 1e9);
  EXPECT_GT(stats.nodeBusySeconds[0], 1.0);
}

// ---- Collectives -----------------------------------------------------------

class CollectiveSizes
    : public ::testing::TestWithParam<std::tuple<int, sim::ExecBackend>> {
 protected:
  int ranks() const { return std::get<0>(GetParam()); }
  sim::ScopedExecBackend scoped_{std::get<1>(GetParam())};
};

TEST_P(CollectiveSizes, BarrierSynchronises) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<double> after(static_cast<std::size_t>(n), 0.0);
  world.run([&](MpiContext& ctx) {
    // Rank r works r milliseconds, then hits the barrier.
    ctx.computeSeconds(1e-3 * ctx.rank());
    ctx.barrier();
    after[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  // Nobody leaves the barrier before the slowest rank reached it.
  const double slowest = 1e-3 * (n - 1);
  for (double t : after) EXPECT_GE(t, slowest);
}

TEST_P(CollectiveSizes, BcastDeliversRootData) {
  const int n = ranks();
  const int root = n > 2 ? 2 : 0;
  MpiWorld world(testConfig(), n);
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  world.run([&](MpiContext& ctx) {
    std::vector<double> data;
    if (ctx.rank() == root) data = {3.0, 1.0, 4.0, 1.0, 5.0};
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.bcast(std::move(data), root);
  });
  for (const auto& r : results)
    EXPECT_EQ(r, (std::vector<double>{3.0, 1.0, 4.0, 1.0, 5.0}));
}

TEST_P(CollectiveSizes, ReduceSumsContributions) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<double> rootResult;
  world.run([&](MpiContext& ctx) {
    const std::vector<double> mine = {static_cast<double>(ctx.rank()),
                                      1.0};
    const auto out = ctx.reduceSum(mine, 0);
    if (ctx.rank() == 0) rootResult = out;
  });
  ASSERT_EQ(rootResult.size(), 2u);
  EXPECT_DOUBLE_EQ(rootResult[0], n * (n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(rootResult[1], n);
}

TEST_P(CollectiveSizes, AllreduceGivesEveryoneTheSum) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  world.run([&](MpiContext& ctx) {
    sums[static_cast<std::size_t>(ctx.rank())] =
        ctx.allreduceSum(static_cast<double>(ctx.rank() + 1));
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, n * (n + 1) / 2.0);
}

TEST_P(CollectiveSizes, AllreduceMaxFindsGlobalMax) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<double> maxes(static_cast<std::size_t>(n), 0.0);
  world.run([&](MpiContext& ctx) {
    // Values peak in the middle to exercise non-root extremes.
    const double mine = -std::abs(ctx.rank() - n / 2.0);
    maxes[static_cast<std::size_t>(ctx.rank())] = ctx.allreduceMax(mine);
  });
  const double expected = n % 2 == 0 ? 0.0 : -0.5;
  for (double m : maxes) EXPECT_DOUBLE_EQ(m, expected);
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrder) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<double> gathered;
  world.run([&](MpiContext& ctx) {
    const auto all = ctx.gather(static_cast<double>(ctx.rank() * 10), 0);
    if (ctx.rank() == 0) gathered = all;
  });
  ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], r * 10.0);
}

TEST_P(CollectiveSizes, AllgatherEveryoneSeesAll) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  world.run([&](MpiContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.allgather(static_cast<double>(ctx.rank()));
  });
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(r[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(CollectiveSizes, AlltoallCompletes) {
  const int n = ranks();
  MpiWorld world(testConfig(), n);
  const auto stats = world.run([&](MpiContext& ctx) {
    ctx.alltoallBytes(4096);
  });
  // Every ordered pair exchanged one message.
  EXPECT_EQ(stats.messageCount, static_cast<std::uint64_t>(n) * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    RankCounts, CollectiveSizes,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 13, 16),
                       ::testing::Values(sim::ExecBackend::Fiber,
                                         sim::ExecBackend::Thread)),
    [](const auto& paramInfo) {
      return std::to_string(std::get<0>(paramInfo.param)) + "_" +
             sim::toString(std::get<1>(paramInfo.param));
    });

TEST_P(SimMpiNonblockingTest, IrecvOverlapsComputeWithArrival) {
  // Rank 1 posts irecv, computes 10 ms while the message flies, then
  // waits: total time ~= max(compute, message), not the sum.
  MpiWorld world(testConfig(), 2);
  double finish = 0.0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 3, 64);
    } else {
      const auto req = ctx.irecv(0, 3);
      ctx.computeSeconds(10e-3);
      ctx.wait(req);
      finish = ctx.now();
    }
  });
  EXPECT_LT(finish, 10e-3 + 120e-6);  // overlapped, only recv CPU added
  EXPECT_GT(finish, 10e-3);
}

TEST_P(SimMpiNonblockingTest, IsendDoesNotBlockEvenAboveRendezvousThreshold) {
  MpiWorld world(testConfig(1, net::Protocol::OpenMx), 2);
  double sendDone = 0.0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      const auto req = ctx.isend(1, 4, 512 * 1024);  // would rendezvous
      sendDone = ctx.now();
      ctx.wait(req);
    } else {
      ctx.computeSeconds(0.5);  // receiver very late
      ctx.recv(0, 4);
    }
  });
  // The blocking rendezvous path would have waited ~0.5 s for the CTS.
  EXPECT_LT(sendDone, 0.1);
}

TEST_P(SimMpiNonblockingTest, PayloadDeliveredThroughWait) {
  MpiWorld world(testConfig(), 2);
  std::vector<double> got;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<double> data = {2.5, 7.5};
      // Deliberate raw-byte round trip of the payload path; production code
      // should use sendDoubles/recvDoubles instead.
      ctx.isend(1, 9, data.size() * sizeof(double),  // tibsim-lint: allow(mpi-contract)
                std::as_bytes(std::span<const double>(data)));
    } else {
      const auto req = ctx.irecv(0, 9);
      const auto raw = ctx.wait(req);
      got.resize(raw.size() / sizeof(double));
      std::memcpy(got.data(), raw.data(), raw.size());
    }
  });
  EXPECT_EQ(got, (std::vector<double>{2.5, 7.5}));
}

TEST_P(SimMpiNonblockingTest, WaitallCompletesManyRequests) {
  MpiWorld world(testConfig(), 4);
  int completed = 0;
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<MpiContext::Request> reqs;
      for (int r = 1; r < 4; ++r) reqs.push_back(ctx.irecv(r, r));
      ctx.waitall(reqs);
      completed = static_cast<int>(reqs.size());
    } else {
      ctx.send(0, ctx.rank(), 128);
    }
  });
  EXPECT_EQ(completed, 3);
}

TEST_P(SimMpiNonblockingTest, DoubleWaitThrows) {
  MpiWorld world(testConfig(), 2);
  EXPECT_THROW(world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 1, 8);
    } else {
      const auto req = ctx.irecv(0, 1);
      ctx.wait(req);
      ctx.wait(req);  // already consumed
    }
  }),
               ContractError);
}

TEST_P(SimMpiCollectivesTest, NeighborExchangeHasNoChainSerialisation) {
  // With the red-black schedule the halo exchange completes in O(1)
  // message times regardless of rank count.
  auto haloTime = [](int ranks) {
    MpiWorld world(testConfig(), ranks);
    const auto stats = world.run([](MpiContext& ctx) {
      ctx.neighborExchange(65536, 5);
    });
    return stats.wallClockSeconds;
  };
  const double small = haloTime(8);
  const double large = haloTime(64);
  EXPECT_LT(large, 2.5 * small);
}

TEST_P(SimMpiCollectivesTest, NeighborExchangeWorksForOddRankCounts) {
  for (int ranks : {2, 3, 5, 7}) {
    MpiWorld world(testConfig(), ranks);
    const auto stats = world.run([](MpiContext& ctx) {
      ctx.neighborExchange(1024, 6);
    });
    // Each interior rank exchanges with 2 neighbours; ends with 1.
    EXPECT_EQ(stats.messageCount,
              static_cast<std::uint64_t>(2 * (ranks - 1)))
        << ranks;
  }
}

TEST_P(SimMpiCollectivesTest, PipelinedBcastFasterThanBinomialForBigPayloads) {
  const std::size_t bytes = 8 << 20;
  auto run = [&](bool pipelined) {
    MpiWorld world(testConfig(), 16);
    const auto stats = world.run([&](MpiContext& ctx) {
      if (pipelined) {
        ctx.pipelinedBcastBytes(bytes, 0);
      } else {
        ctx.bcastBytes(bytes, 0);
      }
    });
    return stats.wallClockSeconds;
  };
  EXPECT_LT(run(true), run(false));
}

TEST_P(SimMpiCollectivesTest, PipelinedBcastCausality) {
  // No rank may finish the broadcast before the root produced the data.
  MpiWorld world(testConfig(), 8);
  std::vector<double> finish(8, 0.0);
  world.run([&](MpiContext& ctx) {
    if (ctx.rank() == 3) ctx.computeSeconds(0.05);  // root is late
    ctx.pipelinedBcastBytes(1 << 20, 3);
    finish[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  for (double t : finish) EXPECT_GT(t, 0.05);
}

namespace {
// The ticket pairs an acquire with its release for the pool's legacy-compat
// accounting; the tests thread it alongside the buffer like MessagePayload
// does internally.
struct PooledBuf {
  std::vector<std::byte> buf;
  std::uint32_t ticket = PayloadPool::kNoTicket;
};

PooledBuf poolAcquire(PayloadPool& pool, std::span<const std::byte> data) {
  PooledBuf out;
  out.buf = pool.acquire(data, out.ticket);
  return out;
}

void poolRelease(PayloadPool& pool, PooledBuf&& pooled) {
  pool.release(std::move(pooled.buf), pooled.ticket);
}
}  // namespace

TEST(PayloadPool, AcquireCopiesAndCountsAllocations) {
  PayloadPool pool;
  std::vector<std::byte> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i);
  const PooledBuf buf = poolAcquire(pool, data);
  ASSERT_EQ(buf.buf.size(), data.size());
  EXPECT_EQ(std::memcmp(buf.buf.data(), data.data(), data.size()), 0);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(pool.freeBuffers(), 0u);
}

TEST(PayloadPool, ReleasedBuffersAreReusedLifoWithoutAllocating) {
  PayloadPool pool;
  const std::vector<std::byte> data(1024, std::byte{0x5a});
  PooledBuf buf = poolAcquire(pool, data);
  poolRelease(pool, std::move(buf));
  EXPECT_EQ(pool.stats().returns, 1u);
  EXPECT_EQ(pool.freeBuffers(), 1u);
  const PooledBuf again = poolAcquire(pool, data);
  EXPECT_EQ(pool.stats().allocations, 1u);  // unchanged: served from pool
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.freeBuffers(), 0u);
  EXPECT_EQ(again.buf.size(), data.size());
  EXPECT_EQ(std::memcmp(again.buf.data(), data.data(), data.size()), 0);
}

TEST(PayloadPool, EveryAcquireIsEitherReuseOrAllocation) {
  PayloadPool pool;
  const std::vector<std::byte> data(512, std::byte{7});
  for (int round = 0; round < 5; ++round) {
    PooledBuf a = poolAcquire(pool, data);
    PooledBuf b = poolAcquire(pool, data);
    poolRelease(pool, std::move(a));
    poolRelease(pool, std::move(b));
  }
  const PayloadPool::Stats& s = pool.stats();
  EXPECT_EQ(s.reuses + s.allocations, 10u);
  EXPECT_EQ(s.allocations, 2u);  // the first round's two buffers
  EXPECT_EQ(s.returns, 10u);
  EXPECT_EQ(pool.freeBuffers(), 2u);
}

TEST(PayloadPool, LiveHighWaterTracksPeakSimultaneousBuffers) {
  PayloadPool pool;
  const std::vector<std::byte> data(256, std::byte{3});
  PooledBuf a = poolAcquire(pool, data);
  PooledBuf b = poolAcquire(pool, data);
  PooledBuf c = poolAcquire(pool, data);
  EXPECT_EQ(pool.outstandingBuffers(), 3u);
  EXPECT_EQ(pool.stats().liveHighWater, 3u);
  poolRelease(pool, std::move(a));
  poolRelease(pool, std::move(b));
  poolRelease(pool, std::move(c));
  EXPECT_EQ(pool.outstandingBuffers(), 0u);
  // The mark records the peak, not the current level.
  EXPECT_EQ(pool.stats().liveHighWater, 3u);
  // Serial churn afterwards never raises it.
  for (int i = 0; i < 4; ++i) poolRelease(pool, poolAcquire(pool, data));
  EXPECT_EQ(pool.stats().liveHighWater, 3u);
}

TEST(PayloadPool, TrimToHighWaterFreesColdSurplus) {
  PayloadPool pool;
  const std::vector<std::byte> data(256, std::byte{4});
  // Burst: five buffers live at once, then all parked.
  std::vector<PooledBuf> live;
  for (int i = 0; i < 5; ++i) live.push_back(poolAcquire(pool, data));
  for (auto& buf : live) poolRelease(pool, std::move(buf));
  live.clear();
  EXPECT_EQ(pool.freeBuffers(), 5u);
  // Peak demand was 5 simultaneous buffers, so nothing is surplus yet.
  EXPECT_EQ(pool.trimToHighWater(), 0u);
  EXPECT_EQ(pool.freeBuffers(), 5u);
  // A new accounting window with only serial traffic: the observed peak
  // drops to 1, and the next trim frees the four cold buffers.
  pool.resetStats();
  poolRelease(pool, poolAcquire(pool, data));
  EXPECT_EQ(pool.stats().liveHighWater, 1u);
  EXPECT_EQ(pool.trimToHighWater(), 4u);
  EXPECT_EQ(pool.freeBuffers(), 1u);
  EXPECT_EQ(pool.stats().trimmedBuffers, 4u);
  // Idempotent at the mark.
  EXPECT_EQ(pool.trimToHighWater(), 0u);
}

TEST(PayloadPool, TrimAccountsForBuffersStillOutstanding) {
  PayloadPool pool;
  const std::vector<std::byte> data(128, std::byte{5});
  PooledBuf held = poolAcquire(pool, data);
  PooledBuf other = poolAcquire(pool, data);
  poolRelease(pool, std::move(other));
  // Peak 2, one checked out, one parked: parked + outstanding == peak, so
  // the parked buffer must survive the trim.
  EXPECT_EQ(pool.trimToHighWater(), 0u);
  EXPECT_EQ(pool.freeBuffers(), 1u);
  poolRelease(pool, std::move(held));
}

TEST(PayloadPool, SizeClassesRoundCapacityUpAndKeepWarmBuffersPerClass) {
  PayloadPool pool;
  // 100 bytes lands in the 128-byte class, 4000 bytes in the 4096 class.
  EXPECT_EQ(PayloadPool::classBytes(PayloadPool::classIndex(100)), 128u);
  EXPECT_EQ(PayloadPool::classBytes(PayloadPool::classIndex(128)), 128u);
  EXPECT_EQ(PayloadPool::classBytes(PayloadPool::classIndex(129)), 256u);
  EXPECT_EQ(PayloadPool::classBytes(PayloadPool::classIndex(4000)), 4096u);
  const std::vector<std::byte> small(100, std::byte{1});
  const std::vector<std::byte> large(4000, std::byte{2});
  PooledBuf s = poolAcquire(pool, small);
  PooledBuf l = poolAcquire(pool, large);
  EXPECT_EQ(s.buf.capacity(), 128u);
  EXPECT_EQ(l.buf.capacity(), 4096u);
  poolRelease(pool, std::move(s));
  poolRelease(pool, std::move(l));
  // Each request is served from its own class: the small request must not
  // consume (and under-size) the large parked buffer or vice versa.
  PooledBuf s2 = poolAcquire(pool, small);
  EXPECT_EQ(s2.buf.capacity(), 128u);
  PooledBuf l2 = poolAcquire(pool, large);
  EXPECT_EQ(l2.buf.capacity(), 4096u);
  const auto& cs = pool.classStats();
  EXPECT_EQ(cs[PayloadPool::classIndex(100)].reuses, 1u);
  EXPECT_EQ(cs[PayloadPool::classIndex(4000)].reuses, 1u);
  poolRelease(pool, std::move(s2));
  poolRelease(pool, std::move(l2));
}

TEST(PayloadPool, ClassPoolReusesWhereTheLegacyLifoWouldAllocate) {
  // Release order large-then-small leaves the small capacity on top of the
  // legacy LIFO, so the old pool would pop it for a large request, find it
  // too small, and reallocate. The class pool picks the exact class instead.
  // The serialised (compat) stats must still report the legacy outcome —
  // that is the byte-identical artefact contract — while the class stats
  // report the true reuse.
  PayloadPool pool;
  const std::vector<std::byte> small(100, std::byte{1});
  const std::vector<std::byte> large(4000, std::byte{2});
  PooledBuf l = poolAcquire(pool, large);
  PooledBuf s = poolAcquire(pool, small);
  poolRelease(pool, std::move(l));
  poolRelease(pool, std::move(s));  // small capacity now tops the legacy LIFO
  PooledBuf l2 = poolAcquire(pool, large);
  EXPECT_EQ(l2.buf.capacity(), 4096u);          // served from the 4096 class
  EXPECT_EQ(pool.stats().allocations, 3u);      // legacy model reallocated
  EXPECT_EQ(pool.stats().reuses, 0u);
  EXPECT_EQ(pool.classStats()[PayloadPool::classIndex(4000)].reuses, 1u);
  poolRelease(pool, std::move(l2));
}

TEST(PayloadPool, DisableCompatStopsMintingTickets) {
  // Per-shard pools in a sharded world run without the compat model (the
  // world replays the canonical acquire/release order itself), so their
  // acquires hand back kNoTicket and the legacy counters stay untouched.
  PayloadPool pool;
  pool.disableCompat();
  const std::vector<std::byte> data(1024, std::byte{9});
  PooledBuf buf = poolAcquire(pool, data);
  EXPECT_EQ(buf.ticket, PayloadPool::kNoTicket);
  poolRelease(pool, std::move(buf));
  EXPECT_EQ(pool.stats().reuses + pool.stats().allocations, 0u);
  EXPECT_EQ(pool.stats().returns, 0u);
  // The class pool itself still works normally.
  EXPECT_EQ(pool.freeBuffers(), 1u);
  PooledBuf again = poolAcquire(pool, data);
  EXPECT_EQ(pool.classStats()[PayloadPool::classIndex(1024)].reuses, 1u);
  poolRelease(pool, std::move(again));
}

TEST(PayloadPool, WorldRunReportsTrimAndHighWater) {
  // A world whose ranks exchange pool-sized payloads must report a nonzero
  // live high-water mark, and the teardown trim keeps the parked-buffer
  // count at or below it.
  MpiWorld world(WorldConfig::tibidaboNode(), 2);
  const WorldStats stats = world.run([](MpiContext& ctx) {
    std::vector<double> data(512, 1.5);  // 4 KiB: pooled, not inline
    if (ctx.rank() == 0)
      for (int i = 0; i < 8; ++i) ctx.sendDoubles(1, 7, data);
    else
      for (int i = 0; i < 8; ++i) (void)ctx.recvDoubles(0, 7);
  });
  EXPECT_GT(stats.payloadPooledMessages, 0u);
  EXPECT_GE(stats.payloadPoolLiveHighWater, 1u);
  // All payloads are the same size here, so every pool hit is a reuse and
  // the parked-buffer count is returns - reuses - trimmed; after the
  // teardown trim it must not exceed the observed peak demand.
  EXPECT_LE(stats.payloadPoolReturns - stats.payloadPoolReuses -
                stats.payloadPoolTrimmedBuffers,
            stats.payloadPoolLiveHighWater);
}

TEST(MessagePayloadStorage, InlineUpToCapacityPooledAbove) {
  PayloadPool pool;
  const std::vector<std::byte> small(MessagePayload::kInlineCapacity,
                                     std::byte{1});
  const std::vector<std::byte> big(MessagePayload::kInlineCapacity + 1,
                                   std::byte{2});
  MessagePayload inlined(small, pool);
  MessagePayload pooled(big, pool);
  EXPECT_FALSE(inlined.pooled());
  EXPECT_TRUE(pooled.pooled());
  EXPECT_EQ(pool.stats().inlineMessages, 1u);
  EXPECT_EQ(pool.stats().pooledMessages, 1u);
  EXPECT_EQ(pool.stats().allocations, 1u);

  // Moves hand over the storage and leave the source empty.
  MessagePayload moved(std::move(pooled));
  EXPECT_TRUE(moved.pooled());
  EXPECT_EQ(moved.size(), big.size());
  EXPECT_EQ(pooled.size(), 0u);  // NOLINT(bugprone-use-after-move)

  // intoVector hands the bytes to the caller and recycles the buffer.
  const std::vector<std::byte> out = moved.intoVector(pool);
  EXPECT_EQ(out, big);
  EXPECT_EQ(pool.stats().returns, 1u);
  EXPECT_EQ(pool.freeBuffers(), 1u);

  const std::vector<std::byte> outInline = inlined.intoVector(pool);
  EXPECT_EQ(outInline, small);
  EXPECT_EQ(pool.stats().returns, 1u);  // inline payloads touch no buffer
}

TEST_P(SimMpiTest, PayloadRoundTripsAcrossInlineBoundary) {
  // Byte-exact round trips on both storage paths, straddling the 64-byte
  // inline capacity (inline below, pooled above).
  for (const std::size_t bytes :
       {std::size_t{1}, MessagePayload::kInlineCapacity - 1,
        MessagePayload::kInlineCapacity, MessagePayload::kInlineCapacity + 1,
        std::size_t{4096}}) {
    MpiWorld world(testConfig(), 2);
    std::vector<std::byte> sent(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
      sent[i] = static_cast<std::byte>(i * 37 + 11);
    std::vector<std::byte> got;
    const WorldStats stats = world.run([&](MpiContext& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, 5, sent.size(), sent);
      } else {
        got = ctx.recv(0, 5);
      }
    });
    EXPECT_EQ(got, sent) << bytes << " bytes";
    if (bytes <= MessagePayload::kInlineCapacity) {
      EXPECT_EQ(stats.payloadInlineMessages, 1u) << bytes << " bytes";
      EXPECT_EQ(stats.payloadPooledMessages, 0u) << bytes << " bytes";
    } else {
      EXPECT_EQ(stats.payloadPooledMessages, 1u) << bytes << " bytes";
      EXPECT_EQ(stats.payloadPoolReturns, 1u) << bytes << " bytes";
    }
  }
}

TEST_P(SimMpiTest, SteadyStatePooledSendsStopAllocating) {
  // The tentpole invariant: once the pool is warm, pooled sends are served
  // from recycled buffers — reuses grow, allocations stay at the warm-up
  // constant, and every pooled buffer comes back.
  MpiWorld world(testConfig(), 2);
  constexpr int kReps = 100;
  const WorldStats stats = world.run([&](MpiContext& ctx) {
    std::vector<std::byte> payload(4096, std::byte{0x5a});
    const int peer = 1 - ctx.rank();
    const int sendTag = ctx.rank() == 0 ? 7 : 8;
    const int recvTag = ctx.rank() == 0 ? 8 : 7;
    for (int rep = 0; rep < kReps; ++rep) {
      ctx.send(peer, sendTag, payload.size(), payload);
      ctx.recv(peer, recvTag);
    }
  });
  EXPECT_EQ(stats.payloadPooledMessages, 2u * kReps);
  EXPECT_EQ(stats.payloadPoolReturns, stats.payloadPooledMessages);
  EXPECT_EQ(stats.payloadPoolReuses + stats.payloadPoolAllocations,
            stats.payloadPooledMessages);
  // Warm-up allocates at most one buffer per in-flight message direction;
  // everything after that is reuse.
  EXPECT_LE(stats.payloadPoolAllocations, 4u);
  EXPECT_GE(stats.payloadPoolReuses, 2u * kReps - 4u);
}

// ---------------------------------------------------------------------------
// Communicators: wildcard matching, split/dup, reductions, non-blocking
// collectives, and the task-farm proxy built on them.
// ---------------------------------------------------------------------------

class SimMpiCommunicatorTest : public SimMpiTest {};
TIBSIM_INSTANTIATE_BACKENDS(SimMpiCommunicatorTest);

TEST_P(SimMpiCommunicatorTest, WorldCommunicatorIsIdentity) {
  MpiWorld world(testConfig(), 4);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    EXPECT_TRUE(comm.isWorld());
    EXPECT_EQ(comm.id(), 0u);
    EXPECT_EQ(comm.rank(), ctx.rank());
    EXPECT_EQ(comm.size(), ctx.size());
    for (int r = 0; r < ctx.size(); ++r) {
      EXPECT_EQ(comm.worldRank(r), r);
      EXPECT_EQ(comm.commRankOf(r), r);
    }
  });
}

TEST_P(SimMpiCommunicatorTest, WildcardRecvReportsSourceAndTag) {
  MpiWorld world(testConfig(), 2);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    if (ctx.rank() == 0) {
      comm.sendDoubles(1, 17, std::vector<double>{3.5});
    } else {
      int src = -2;
      int tag = -2;
      const auto bytes =  // tibsim-lint: allow(wildcard-recv)
          comm.recv(kAnySource, kAnyTag, nullptr, &src, &tag);
      EXPECT_EQ(src, 0);
      EXPECT_EQ(tag, 17);
      EXPECT_EQ(bytes.size(), sizeof(double));
    }
  });
}

TEST_P(SimMpiCommunicatorTest, WildcardRecvIsDeterministicAcrossShards) {
  // Four senders race into one wildcard receiver; the matched (src, tag)
  // sequence must be identical for every shard count (and both backends,
  // via the suite parameter). Tiny leaf switches force real sharding.
  auto sequence = [](int shards) {
    WorldConfig cfg = testConfig();
    cfg.topology.nodesPerLeafSwitch = 2;
    cfg.simShards = shards;
    MpiWorld world(cfg, 5);
    std::vector<std::pair<int, int>> matched;
    world.run([&](MpiContext& ctx) {
      const Communicator comm = ctx.commWorld();
      if (ctx.rank() == 0) {
        for (int i = 0; i < 4; ++i) {
          int src = -1;
          const std::vector<double> v =  // tibsim-lint: allow(wildcard-recv)
              comm.recvDoubles(kAnySource, 100, &src);
          ASSERT_EQ(v.size(), 1u);
          EXPECT_EQ(v[0], static_cast<double>(src));
          matched.emplace_back(src, 100);
        }
      } else {
        ctx.computeSeconds(1e-6 * (ctx.rank() % 3));
        comm.sendDoubles(0, 100,
                         std::vector<double>{static_cast<double>(ctx.rank())});
      }
    });
    return matched;
  };
  const auto base = sequence(1);
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(sequence(2), base);
  EXPECT_EQ(sequence(4), base);
  EXPECT_EQ(sequence(1), base);  // rerun stability
}

TEST_P(SimMpiCommunicatorTest, SplitOrdersMembersByKeyThenWorldRank) {
  MpiWorld world(testConfig(), 6);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    // Even/odd halves, keyed by descending world rank: comm-local order
    // inside each colour is reversed relative to world order.
    const Communicator half = comm.split(ctx.rank() % 2, -ctx.rank());
    ASSERT_FALSE(half.isNull());
    EXPECT_EQ(half.size(), 3);
    const std::vector<int> evens = {4, 2, 0};
    const std::vector<int> odds = {5, 3, 1};
    const auto& members = ctx.rank() % 2 == 0 ? evens : odds;
    for (int r = 0; r < 3; ++r) EXPECT_EQ(half.worldRank(r), members[r]);
    EXPECT_EQ(half.worldRank(half.rank()), ctx.rank());
    // Traffic stays comm-local even with clashing tags: neighbours in the
    // ring exchange on the same tag the world also uses elsewhere.
    const int peer = (half.rank() + 1) % half.size();
    const int from = (half.rank() + 2) % half.size();
    half.sendDoubles(peer, 5,
                     std::vector<double>{static_cast<double>(half.rank())});
    const std::vector<double> got = half.recvDoubles(from, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<double>(from));
  });
}

TEST_P(SimMpiCommunicatorTest, SplitUndefinedColorYieldsNull) {
  MpiWorld world(testConfig(), 4);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const Communicator leaders =
        comm.split(ctx.rank() == 0 ? 0 : kUndefinedColor, ctx.rank());
    if (ctx.rank() == 0) {
      ASSERT_FALSE(leaders.isNull());
      EXPECT_EQ(leaders.size(), 1);
      EXPECT_EQ(leaders.rank(), 0);
    } else {
      EXPECT_TRUE(leaders.isNull());
    }
  });
}

TEST_P(SimMpiCommunicatorTest, SplitMintsDistinctDeterministicIds) {
  auto ids = [this] {
    MpiWorld world(testConfig(), 4);
    std::vector<std::uint64_t> out;
    world.run([&](MpiContext& ctx) {
      const Communicator comm = ctx.commWorld();
      const Communicator a = comm.split(ctx.rank() % 2, ctx.rank());
      const Communicator b = comm.split(0, ctx.rank());
      if (ctx.rank() == 0) out = {a.id(), b.id()};
    });
    return out;
  };
  const auto first = ids();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_NE(first[0], 0u);
  EXPECT_NE(first[1], 0u);
  EXPECT_NE(first[0], first[1]);
  EXPECT_EQ(ids(), first);
}

TEST_P(SimMpiCommunicatorTest, DupIsolatesTrafficFromParent) {
  MpiWorld world(testConfig(), 2);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const Communicator clone = comm.dup();
    EXPECT_NE(clone.id(), comm.id());
    EXPECT_EQ(clone.size(), comm.size());
    if (ctx.rank() == 0) {
      // Same destination, same tag, two communicators — delivery order
      // would cross-match them if matching ignored the communicator.
      comm.sendDoubles(1, 9, std::vector<double>{1.0});
      clone.sendDoubles(1, 9, std::vector<double>{2.0});
    } else {
      const std::vector<double> onClone = clone.recvDoubles(0, 9);
      const std::vector<double> onWorld = comm.recvDoubles(0, 9);
      ASSERT_EQ(onClone.size(), 1u);
      ASSERT_EQ(onWorld.size(), 1u);
      EXPECT_EQ(onClone[0], 2.0);
      EXPECT_EQ(onWorld[0], 1.0);
    }
  });
}

TEST_P(SimMpiCommunicatorTest, ReduceOpsMatchExpectedValues) {
  MpiWorld world(testConfig(), 4);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const double mine = static_cast<double>(ctx.rank() + 1);  // 1..4
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Sum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Min), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Max), 4.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::Prod), 24.0);
    const double values[2] = {mine, -mine};
    const std::vector<double> atRoot =
        comm.reduce(std::span<const double>(values, 2), ReduceOp::Max, 2);
    if (ctx.rank() == 2) {
      ASSERT_EQ(atRoot.size(), 2u);
      EXPECT_DOUBLE_EQ(atRoot[0], 4.0);
      EXPECT_DOUBLE_EQ(atRoot[1], -1.0);
    } else {
      EXPECT_TRUE(atRoot.empty());
    }
  });
}

TEST_P(SimMpiCommunicatorTest, ReduceAcceptsUserCombineFn) {
  MpiWorld world(testConfig(), 4);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const double mine[1] = {static_cast<double>(ctx.rank() + 1)};
    // Commutative-associative user combiner: max of squares.
    const std::vector<double> got = comm.reduce(
        std::span<const double>(mine, 1),
        [](double a, double b) { return a * a > b * b ? a : b; }, 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(got.size(), 1u);
      EXPECT_DOUBLE_EQ(got[0], 4.0);
    }
  });
}

TEST_P(SimMpiCommunicatorTest, NonblockingCollectivesCompleteAtWait) {
  MpiWorld world(testConfig(), 4);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const Communicator::Request barrier = comm.ibarrier();
    comm.wait(barrier);

    std::vector<double> payload;
    if (ctx.rank() == 1) payload = {2.5, -0.5};
    const Communicator::Request bcast = comm.ibcast(std::move(payload), 1);
    const std::vector<double> fromRoot = comm.waitDoubles(bcast);
    EXPECT_EQ(fromRoot, (std::vector<double>{2.5, -0.5}));

    const double mine[1] = {static_cast<double>(ctx.rank() + 1)};
    const Communicator::Request sum =
        comm.iallreduce(std::span<const double>(mine, 1), ReduceOp::Sum);
    const std::vector<double> total = comm.waitDoubles(sum);
    ASSERT_EQ(total.size(), 1u);
    EXPECT_DOUBLE_EQ(total[0], 10.0);
  });
}

TEST_P(SimMpiCommunicatorTest, CollectivesRunOnSplitCommunicators) {
  MpiWorld world(testConfig(), 6);
  world.run([](MpiContext& ctx) {
    const Communicator comm = ctx.commWorld();
    const Communicator half = comm.split(ctx.rank() % 2, ctx.rank());
    half.barrier();
    const std::vector<double> all =
        half.allgather(static_cast<double>(ctx.rank()));
    ASSERT_EQ(all.size(), 3u);
    // Members in comm-local order are world ranks parity, parity+2, ...
    for (int r = 0; r < 3; ++r)
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)],
                       static_cast<double>(2 * r + ctx.rank() % 2));
    EXPECT_DOUBLE_EQ(half.allreduce(1.0, ReduceOp::Sum), 3.0);
  });
}

TEST_P(SimMpiCommunicatorTest, RecvDoublesReportsByteCountAndSource) {
  MpiWorld world(testConfig(), 2);
  try {
    world.run([](MpiContext& ctx) {
      if (ctx.rank() == 0) {
        const std::vector<std::byte> raw(12, std::byte{0});
        ctx.send(1, 3, raw.size(), raw);
      } else {
        ctx.recvDoubles(0, 3);
      }
    });
    FAIL() << "recvDoubles accepted a 12-byte payload";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("12-byte payload"), std::string::npos) << what;
    EXPECT_NE(what.find("from rank 0"), std::string::npos) << what;
  }
}

TEST_P(SimMpiCommunicatorTest, TaskFarmDistributesEveryTaskDeterministically) {
  auto distribution = [](int shards) {
    WorldConfig cfg = testConfig();
    cfg.topology.nodesPerLeafSwitch = 2;
    cfg.simShards = shards;
    MpiWorld world(cfg, 9);
    apps::TaskFarm::Params params;
    params.tasks = 40;
    std::vector<std::uint64_t> perWorker;
    params.tasksPerWorkerOut = &perWorker;
    world.run(apps::TaskFarm::rankBody(params));
    return perWorker;
  };
  const std::vector<std::uint64_t> base = distribution(1);
  ASSERT_EQ(base.size(), 9u);
  EXPECT_EQ(base[0], 0u);  // the master serves, it does not compute
  std::uint64_t total = 0;
  for (std::uint64_t n : base) total += n;
  EXPECT_EQ(total, 40u);
  for (std::size_t w = 1; w < base.size(); ++w)
    EXPECT_GE(base[w], 1u) << "worker " << w << " starved";
  EXPECT_EQ(distribution(2), base);
  EXPECT_EQ(distribution(4), base);
}

TEST_P(SimMpiTest, DeterministicAcrossRuns) {
  auto once = [] {
    MpiWorld world(testConfig(2, net::Protocol::OpenMx), 8);
    const auto stats = world.run([](MpiContext& ctx) {
      ctx.computeSeconds(1e-4 * (ctx.rank() % 3));
      ctx.allreduceSum(1.0);
      ctx.alltoallBytes(10000);
      ctx.barrier();
    });
    return stats.wallClockSeconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace tibsim::mpi
