// Tests for the DVFS governor simulation (Section 5's "performance
// governor" tuning decision).

#include <gtest/gtest.h>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/power/dvfs_governor.hpp"

namespace tibsim::power {
namespace {

using namespace units;
using arch::PlatformRegistry;

perfmodel::WorkProfile computeShape() {
  return {1.0, 0.0, perfmodel::AccessPattern::Resident, 0.9, 1.0, 0.0};
}

std::vector<WorkPhase> burstyTrace() {
  // Ten compute bursts of 0.5 GFLOP separated by 0.3 s waits — an HPC
  // iteration pattern with communication/IO gaps.
  return std::vector<WorkPhase>(10, WorkPhase{0.5e9, 0.3});
}

DvfsGovernor::Config cfg(GovernorPolicy policy) {
  DvfsGovernor::Config config;
  config.policy = policy;
  return config;
}

TEST(Governor, PerformancePinsMaxFrequency) {
  const DvfsGovernor governor(PlatformRegistry::tegra2(),
                              cfg(GovernorPolicy::Performance));
  const auto result = governor.run(burstyTrace(), computeShape());
  EXPECT_NEAR(result.averageFrequencyHz, ghz(1.0), 1.0);
  for (double f : result.frequencyTrace) EXPECT_DOUBLE_EQ(f, ghz(1.0));
}

TEST(Governor, PowersavePinsMinFrequency) {
  const auto platform = PlatformRegistry::tegra2();
  const DvfsGovernor governor(platform, cfg(GovernorPolicy::Powersave));
  const auto result = governor.run(burstyTrace(), computeShape());
  EXPECT_NEAR(result.averageFrequencyHz, platform.soc.minFrequencyHz(), 1.0);
}

TEST(Governor, PerformanceFinishesFirst) {
  const auto platform = PlatformRegistry::exynos5250();
  const auto trace = burstyTrace();
  double prev = 0.0;
  for (auto policy : {GovernorPolicy::Performance, GovernorPolicy::OnDemand,
                      GovernorPolicy::Powersave}) {
    const auto result =
        DvfsGovernor(platform, cfg(policy)).run(trace, computeShape());
    EXPECT_GT(result.seconds, prev);  // each slower than the previous
    prev = result.seconds;
  }
}

TEST(Governor, OnDemandRampsUpUnderLoadAndDownWhenIdle) {
  const auto platform = PlatformRegistry::tegra3();
  const DvfsGovernor governor(platform, cfg(GovernorPolicy::OnDemand));
  // One long burst then a long idle tail.
  const std::vector<WorkPhase> trace = {{2e9, 3.0}};
  const auto result = governor.run(trace, computeShape());
  // Reached max during the burst...
  EXPECT_DOUBLE_EQ(
      *std::max_element(result.frequencyTrace.begin(),
                        result.frequencyTrace.end()),
      platform.maxFrequencyHz());
  // ...and back to min by the end of the idle tail.
  EXPECT_DOUBLE_EQ(result.frequencyTrace.back(),
                   platform.soc.minFrequencyHz());
}

TEST(Governor, ConservativeStepsOneOperatingPointAtATime) {
  const auto platform = PlatformRegistry::exynos5250();
  const DvfsGovernor governor(platform, cfg(GovernorPolicy::Conservative));
  const std::vector<WorkPhase> trace = {{5e9, 0.0}};
  const auto result = governor.run(trace, computeShape());
  const auto& dvfs = platform.soc.dvfs;
  for (std::size_t i = 1; i < result.frequencyTrace.size(); ++i) {
    // Find operating-point indices; consecutive samples differ by <= 1.
    auto indexOf = [&](double f) {
      for (std::size_t k = 0; k < dvfs.size(); ++k)
        if (std::abs(dvfs[k].frequencyHz - f) < 1.0) return k;
      return std::size_t{0};
    };
    const auto a = indexOf(result.frequencyTrace[i - 1]);
    const auto b = indexOf(result.frequencyTrace[i]);
    EXPECT_LE(b > a ? b - a : a - b, 1u);
  }
}

TEST(Governor, PerformanceGovernorWinsEnergyOnMobileBoards) {
  // The paper's Section 5 decision: with board-dominated power, racing to
  // idle at max frequency uses *less* energy than crawling at low
  // frequency — the same result as the Figure 3(b) sweep.
  for (const auto& platform :
       {PlatformRegistry::tegra2(), PlatformRegistry::exynos5250()}) {
    const auto trace = burstyTrace();
    const auto perf = DvfsGovernor(platform, cfg(GovernorPolicy::Performance))
                          .run(trace, computeShape());
    const auto save = DvfsGovernor(platform, cfg(GovernorPolicy::Powersave))
                          .run(trace, computeShape());
    EXPECT_LT(perf.energyJ, save.energyJ) << platform.shortName;
  }
}

TEST(Governor, OnDemandCloseToPerformanceForSustainedLoad) {
  // With no idle gaps ondemand ramps once and stays at max: its time must
  // be within a few governor ticks of the performance governor's.
  const auto platform = PlatformRegistry::tegra3();
  const std::vector<WorkPhase> trace = {{20e9, 0.0}};
  const auto perf = DvfsGovernor(platform, cfg(GovernorPolicy::Performance))
                        .run(trace, computeShape());
  const auto ond = DvfsGovernor(platform, cfg(GovernorPolicy::OnDemand))
                       .run(trace, computeShape());
  EXPECT_LT(ond.seconds, perf.seconds * 1.10);
}

TEST(Governor, BusyFractionReported) {
  const DvfsGovernor governor(PlatformRegistry::tegra2(),
                              cfg(GovernorPolicy::Performance));
  const auto result = governor.run(burstyTrace(), computeShape());
  EXPECT_GT(result.busyFraction, 0.0);
  EXPECT_LT(result.busyFraction, 1.0);
}

TEST(Governor, InvalidConfigRejected) {
  DvfsGovernor::Config bad;
  bad.samplePeriodSeconds = 0.0;
  EXPECT_THROW(DvfsGovernor(PlatformRegistry::tegra2(), bad), ContractError);
}

}  // namespace
}  // namespace tibsim::power
