// Calibration gate: the modelled results must reproduce the paper's
// reported anchors (Sections 3-4) within stated tolerances. These tests are
// the machine-checked version of EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/net/protocol.hpp"

namespace tibsim::core {
namespace {

using namespace units;
using arch::PlatformRegistry;

double speedupAt(const arch::Platform& platform, double frequencyHz,
                 int cores) {
  const auto base = MicroKernelExperiment::baseline();
  const auto suite =
      MicroKernelExperiment::measureSuite(platform, frequencyHz, cores);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < base.size(); ++i)
    ratios.push_back(base[i].seconds / suite[i].seconds);
  return stats::geomean(ratios);
}

double suiteEnergy(const arch::Platform& platform, double frequencyHz,
                   int cores) {
  double energy = 0.0;
  for (const auto& m :
       MicroKernelExperiment::measureSuite(platform, frequencyHz, cores))
    energy += m.energyJ;
  return energy;
}

// ---- Figure 3(a): single-core speedups vs Tegra2 @ 1 GHz -------------------

TEST(Fig3Perf, Tegra3At1GHzAbout9PercentFaster) {
  const double s = speedupAt(PlatformRegistry::tegra3(), ghz(1.0), 1);
  EXPECT_GT(s, 1.03);  // paper: 1.09
  EXPECT_LT(s, 1.20);
}

TEST(Fig3Perf, ArndaleAt1GHzAbout30PercentFaster) {
  const double s = speedupAt(PlatformRegistry::exynos5250(), ghz(1.0), 1);
  EXPECT_GT(s, 1.20);  // paper: 1.30
  EXPECT_LT(s, 1.55);
}

TEST(Fig3Perf, MaxFrequencyOrderingMatchesPaper) {
  // Paper: Tegra3 1.36x, Arndale 2.3x, Intel ~3x Arndale.
  const double tegra3 =
      speedupAt(PlatformRegistry::tegra3(), ghz(1.3), 1);
  const double arndale =
      speedupAt(PlatformRegistry::exynos5250(), ghz(1.7), 1);
  const double intel =
      speedupAt(PlatformRegistry::corei7_2760qm(), ghz(2.4), 1);
  EXPECT_NEAR(tegra3, 1.36, 0.25);
  EXPECT_NEAR(arndale, 2.3, 0.45);
  EXPECT_NEAR(intel / arndale, 3.0, 0.8);
  // Tegra2 is 6.5-8x slower than the i7 (both at max frequency).
  EXPECT_GT(intel, 5.5);
  EXPECT_LT(intel, 9.0);
}

TEST(Fig3Perf, PerformanceRisesWithFrequencyOnEveryPlatform) {
  for (const auto& platform : PlatformRegistry::evaluated()) {
    double prev = 0.0;
    for (const auto& op : platform.soc.dvfs) {
      const double s = speedupAt(platform, op.frequencyHz, 1);
      EXPECT_GT(s, prev) << platform.shortName;
      prev = s;
    }
  }
}

// ---- Figure 3(b): single-core energy per iteration -------------------------

TEST(Fig3Energy, AbsoluteJoulesMatchPaper) {
  // Paper: Tegra2 23.93 J, Tegra3 19.62 J, Arndale 16.95 J, i7 28.57 J
  // (single core, 1 GHz for the ARM parts; the i7 figure is quoted at its
  // operating point in the same figure).
  EXPECT_NEAR(suiteEnergy(PlatformRegistry::tegra2(), ghz(1.0), 1), 23.93,
              3.5);
  EXPECT_NEAR(suiteEnergy(PlatformRegistry::tegra3(), ghz(1.0), 1), 19.62,
              3.0);
  EXPECT_NEAR(suiteEnergy(PlatformRegistry::exynos5250(), ghz(1.0), 1),
              16.95, 3.0);
  EXPECT_NEAR(suiteEnergy(PlatformRegistry::corei7_2760qm(), ghz(2.4), 1),
              28.57, 6.0);
}

TEST(Fig3Energy, EnergyEfficiencyImprovesWithFrequency) {
  // The paper's counter-intuitive observation: although core power rises
  // superlinearly, platform energy-to-solution *falls* as f rises, because
  // the board's static power dominates.
  for (const auto& platform : PlatformRegistry::evaluated()) {
    const double eLow =
        suiteEnergy(platform, platform.soc.minFrequencyHz(), 1);
    const double eHigh =
        suiteEnergy(platform, platform.maxFrequencyHz(), 1);
    EXPECT_LT(eHigh, eLow) << platform.shortName;
  }
}

// ---- Figure 4: multicore ----------------------------------------------------

TEST(Fig4, MulticoreImprovesTimeAndEnergyEverywhere) {
  for (const auto& platform : PlatformRegistry::evaluated()) {
    const double f = platform.maxFrequencyHz();
    const double t1 = suiteEnergy(platform, f, 1);
    const double tn = suiteEnergy(platform, f, platform.soc.cores);
    EXPECT_LT(tn, t1) << platform.shortName;
    EXPECT_GT(speedupAt(platform, f, platform.soc.cores),
              speedupAt(platform, f, 1))
        << platform.shortName;
  }
}

TEST(Fig4, EnergyGainsNearPaperValues) {
  // Paper: OpenMP versions use ~1.7x (Tegra2/3), ~2.25x (Arndale), ~2.5x
  // (Intel) less energy than serial. The Arndale figure implies slightly
  // superlinear 2-core scaling which the model does not reproduce; accept
  // the band [1.6, 2.3] there (EXPERIMENTS.md records the deviation).
  const auto gain = [](const arch::Platform& p) {
    const double f = p.maxFrequencyHz();
    return suiteEnergy(p, f, 1) / suiteEnergy(p, f, p.soc.cores);
  };
  EXPECT_NEAR(gain(PlatformRegistry::tegra2()), 1.7, 0.35);
  EXPECT_NEAR(gain(PlatformRegistry::tegra3()), 1.7, 0.6);
  const double arndale = gain(PlatformRegistry::exynos5250());
  EXPECT_GT(arndale, 1.5);
  EXPECT_LT(arndale, 2.35);
  EXPECT_NEAR(gain(PlatformRegistry::corei7_2760qm()), 2.5, 0.6);
}

// ---- Figure 7: interconnect -------------------------------------------------

TEST(Fig7, SmallMessageLatenciesMatchPaper) {
  const auto latency = [](const arch::Platform& p, net::Protocol proto,
                          double f) {
    return net::ProtocolModel(proto, p, f).pingPongLatency(1);
  };
  const auto tegra2 = PlatformRegistry::tegra2();
  const auto exynos = PlatformRegistry::exynos5250();
  // Paper: Tegra2 ~100 us TCP / ~65 us Open-MX.
  EXPECT_NEAR(toUs(latency(tegra2, net::Protocol::TcpIp, ghz(1.0))), 100.0,
              12.0);
  EXPECT_NEAR(toUs(latency(tegra2, net::Protocol::OpenMx, ghz(1.0))), 65.0,
              9.0);
  // Paper: Exynos5 ~125 us TCP / ~93 us Open-MX at 1.0 GHz.
  EXPECT_NEAR(toUs(latency(exynos, net::Protocol::TcpIp, ghz(1.0))), 125.0,
              15.0);
  EXPECT_NEAR(toUs(latency(exynos, net::Protocol::OpenMx, ghz(1.0))), 93.0,
              12.0);
  // ~10 % lower at 1.4 GHz.
  const double drop =
      latency(exynos, net::Protocol::TcpIp, ghz(1.4)) /
      latency(exynos, net::Protocol::TcpIp, ghz(1.0));
  EXPECT_NEAR(drop, 0.90, 0.06);
}

TEST(Fig7, LargeMessageBandwidthsMatchPaper) {
  const auto bandwidth = [](const arch::Platform& p, net::Protocol proto,
                            double f) {
    return net::ProtocolModel(proto, p, f).effectiveBandwidth(4 << 20) /
           1e6;  // MB/s
  };
  const auto tegra2 = PlatformRegistry::tegra2();
  const auto exynos = PlatformRegistry::exynos5250();
  // Paper: Tegra2 65 MB/s TCP, 117 MB/s Open-MX.
  EXPECT_NEAR(bandwidth(tegra2, net::Protocol::TcpIp, ghz(1.0)), 65.0,
              12.0);
  EXPECT_NEAR(bandwidth(tegra2, net::Protocol::OpenMx, ghz(1.0)), 117.0,
              8.0);
  // Paper: Exynos 63 MB/s TCP; 69 MB/s Open-MX @1.0 GHz, 75 @1.4 GHz.
  EXPECT_NEAR(bandwidth(exynos, net::Protocol::OpenMx, ghz(1.0)), 69.0,
              10.0);
  EXPECT_NEAR(bandwidth(exynos, net::Protocol::OpenMx, ghz(1.4)), 75.0,
              10.0);
  // TCP over USB is below Open-MX and well below line rate (shape; the
  // model exaggerates the paper's 63 MB/s somewhat downwards).
  const double tcpUsb = bandwidth(exynos, net::Protocol::TcpIp, ghz(1.0));
  EXPECT_GT(tcpUsb, 35.0);
  EXPECT_LT(tcpUsb, 70.0);
}

TEST(Fig7, SimulatedPingPongAgreesWithAnalyticModel) {
  const auto tegra2 = PlatformRegistry::tegra2();
  for (net::Protocol proto :
       {net::Protocol::TcpIp, net::Protocol::OpenMx}) {
    const double analytic =
        net::ProtocolModel(proto, tegra2, ghz(1.0)).pingPongLatency(64);
    const double simulated =
        simulatedPingPongLatency(tegra2, proto, ghz(1.0), 64);
    EXPECT_NEAR(simulated, analytic, 0.15 * analytic)
        << net::toString(proto);
  }
}

// ---- Table 4 ---------------------------------------------------------------

TEST(Table4, RatiosMatchPaper) {
  const auto rows = bytesPerFlopTable();
  ASSERT_EQ(rows.size(), 4u);
  // Paper values: Tegra2 0.06/0.63/2.50, Tegra3 0.02/0.24/0.96,
  // Exynos 0.02/0.18/0.74, Sandy Bridge 0.00/0.02/0.07.
  EXPECT_NEAR(rows[0].gbe1, 0.06, 0.01);
  EXPECT_NEAR(rows[0].gbe10, 0.63, 0.02);
  EXPECT_NEAR(rows[0].ib40, 2.50, 0.05);
  EXPECT_NEAR(rows[1].gbe1, 0.02, 0.01);
  EXPECT_NEAR(rows[1].gbe10, 0.24, 0.02);
  EXPECT_NEAR(rows[1].ib40, 0.96, 0.05);
  EXPECT_NEAR(rows[2].gbe1, 0.02, 0.01);
  EXPECT_NEAR(rows[2].gbe10, 0.18, 0.02);
  EXPECT_NEAR(rows[2].ib40, 0.74, 0.05);
  EXPECT_NEAR(rows[3].gbe10, 0.02, 0.01);
  EXPECT_NEAR(rows[3].ib40, 0.07, 0.02);
}

}  // namespace
}  // namespace tibsim::core
