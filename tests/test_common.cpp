// Unit tests for the common utilities: contracts, units, RNG, statistics,
// regression, tables, charts, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/regression.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim {
namespace {

TEST(Assert, RequireThrowsContractError) {
  EXPECT_THROW(TIB_REQUIRE(1 == 2), ContractError);
  EXPECT_NO_THROW(TIB_REQUIRE(1 == 1));
}

TEST(Assert, MessageIncludesExpressionAndLocation) {
  try {
    TIB_REQUIRE_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::us(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(units::toUs(1e-6), 1.0);
  EXPECT_DOUBLE_EQ(units::gbps(1.0), 125e6);
  EXPECT_DOUBLE_EQ(units::ghz(2.4), 2.4e9);
  EXPECT_DOUBLE_EQ(units::mib(1.0), 1048576.0);
  EXPECT_DOUBLE_EQ(units::toGflops(2.0e9), 2.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.nextU64() == b.nextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(99);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 0.25, 0.01);
}

TEST(Statistics, MeanMedianStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(stats::median(xs), 3.0);
  EXPECT_NEAR(stats::stddev(xs), 3.5355, 1e-3);
  EXPECT_DOUBLE_EQ(stats::min(xs), 1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 10.0);
  EXPECT_DOUBLE_EQ(stats::sum(xs), 20.0);
}

TEST(Statistics, GeomeanOfPowers) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(stats::geomean(xs), 4.0, 1e-12);
}

TEST(Statistics, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(stats::geomean(xs), ContractError);
}

TEST(Statistics, HarmonicMeanOfRates) {
  const std::vector<double> xs = {2.0, 6.0};
  EXPECT_DOUBLE_EQ(stats::harmonicMean(xs), 3.0);
}

TEST(Statistics, PercentileInterpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 25.0);
}

TEST(Statistics, AccumulatorMatchesBatch) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  stats::Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), stats::mean(xs));
  EXPECT_NEAR(acc.stddev(), stats::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(Regression, RecoversExactLine) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 + 2.5 * x);
  const LinearFit fit = fitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, RecoversExponentialGrowth) {
  // y doubles every 1.5 x-units from 100.
  const double rate = std::log(2.0) / 1.5;
  std::vector<double> xs, ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(100.0 * std::exp(rate * i));
  }
  const ExponentialFit fit = fitExponential(xs, ys);
  EXPECT_NEAR(fit.at(0.0), 100.0, 1e-6);
  EXPECT_NEAR(fit.doublingTime(), 1.5, 1e-9);
  EXPECT_NEAR(fit.growthPerUnit(), std::exp(rate), 1e-9);
}

TEST(Regression, CrossoverOfTwoExponentials) {
  // Slow starts higher, fast catches up: 1000*2^(x/4) vs 10*2^(x/1).
  ExponentialFit slow{1000.0, std::log(2.0) / 4.0, 1.0};
  ExponentialFit fast{10.0, std::log(2.0) / 1.0, 1.0};
  const double x = crossover(fast, slow);
  EXPECT_NEAR(fast.at(x), slow.at(x), 1e-6 * slow.at(x));
  EXPECT_GT(x, 0.0);
}

TEST(Regression, ParallelCurvesThrow) {
  ExponentialFit a{1.0, 0.5, 1.0};
  ExponentialFit b{2.0, 0.5, 1.0};
  EXPECT_THROW(crossover(a, b), ContractError);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  TextTable table({"name", "value"});
  table.addRow({"alpha", "1.0"});
  table.addRow({"betagamma", "2.25"});
  const std::string text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("betagamma"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  const std::string csv = table.toCsv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("alpha,1.0"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), ContractError);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  TextTable table({"x"});
  table.addRow({"a,b\"c"});
  EXPECT_NE(table.toCsv().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmtSi(2.5e9, "B/s", 1), "2.5 GB/s");
  EXPECT_EQ(fmtSi(64e-6, "s", 1), "64.0 us");
}

TEST(Chart, RendersSeriesAndLegend) {
  Series s1{"linear", {1, 2, 3, 4}, {1, 2, 3, 4}};
  Series s2{"flat", {1, 2, 3, 4}, {2, 2, 2, 2}};
  ChartOptions opts;
  opts.title = "test chart";
  const std::string chart = renderChart({s1, s2}, opts);
  EXPECT_NE(chart.find("test chart"), std::string::npos);
  EXPECT_NE(chart.find("linear"), std::string::npos);
  EXPECT_NE(chart.find("flat"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

TEST(Chart, LogScaleRejectsNonPositive) {
  Series s{"bad", {0.0, 1.0}, {1.0, 2.0}};
  ChartOptions opts;
  opts.logX = true;
  EXPECT_THROW(renderChart({s}, opts), ContractError);
}

TEST(Chart, BarsRenderValues) {
  const std::string bars =
      renderBars({{"a", 1.0}, {"bb", 2.0}}, "bars", 20);
  EXPECT_NE(bars.find("bars"), std::string::npos);
  EXPECT_NE(bars.find('#'), std::string::npos);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorksWithSingleThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  int sum = 0;
  pool.parallelFor(10, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, HandlesMoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallelFor(3, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallelFor(0, [&](std::size_t, std::size_t, std::size_t) {
    touched = true;
  });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallelFor(100, [&](std::size_t b, std::size_t e, std::size_t) {
      count.fetch_add(static_cast<int>(e - b));
    });
    ASSERT_EQ(count.load(), 100);
  }
}

}  // namespace
}  // namespace tibsim
