// Tests for the application layer: the real mini-solvers (dense LU,
// Barnes-Hut, 2-D Euler, LJ MD, acoustic wave) and the distributed
// benchmark skeletons.

#include <gtest/gtest.h>

#include <cmath>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/md.hpp"
#include "tibsim/apps/pepc.hpp"
#include "tibsim/apps/specfem.hpp"
#include "tibsim/common/rng.hpp"

namespace tibsim::apps {
namespace {

// ---- DenseLu ---------------------------------------------------------------

class DenseLuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseLuSizes, SolvesRandomSystemAccurately) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  std::vector<double> xTrue(n);
  for (auto& v : xTrue) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * xTrue[j];

  std::vector<double> lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(DenseLu::factor(lu, n, pivots));
  std::vector<double> x = b;
  DenseLu::solve(lu, n, pivots, x);

  // The HPL acceptance test: scaled residual below O(10).
  EXPECT_LT(DenseLu::scaledResidual(a, x, b, n), 16.0);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[i], xTrue[i], 1e-6 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuSizes,
                         ::testing::Values(1, 2, 5, 16, 64, 128));

TEST(DenseLu, SingularMatrixReported) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};  // rank 1
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(DenseLu::factor(a, 2, pivots));
}

TEST(DenseLu, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(DenseLu::factor(a, 2, pivots));
  std::vector<double> b = {2.0, 3.0};
  DenseLu::solve(a, 2, pivots, b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);  // x solves [[0,1],[1,0]] x = (2,3)
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(HplBenchmark, FlopCountFormula) {
  EXPECT_NEAR(HplBenchmark::flopCount(1000),
              2.0 / 3.0 * 1e9 + 2e6, 1.0);
}

TEST(HplBenchmark, WeakScalingProblemGrowsWithNodes) {
  const auto spec = cluster::ClusterSpec::tibidabo();
  const std::size_t n4 = HplBenchmark::problemSizeForNodes(spec, 4);
  const std::size_t n16 = HplBenchmark::problemSizeForNodes(spec, 16);
  EXPECT_NEAR(static_cast<double>(n16) / static_cast<double>(n4), 2.0,
              0.1);  // memory per node fixed => n ~ sqrt(nodes)
  EXPECT_EQ(n4 % 256, 0u);
}

// ---- Barnes-Hut -------------------------------------------------------------

TEST(BarnesHut, MatchesDirectSummation) {
  Rng rng(7);
  std::vector<BarnesHutTree::Body> bodies(300);
  for (auto& b : bodies) {
    b.x = rng.uniform(-1.0, 1.0);
    b.y = rng.uniform(-1.0, 1.0);
    b.z = rng.uniform(-1.0, 1.0);
    b.charge = rng.uniform(0.1, 1.0);
  }
  const BarnesHutTree tree(bodies);
  const auto approx = tree.allForces(0.4);
  const auto exact = tree.directForces();
  double rmsErr = 0.0, rmsMag = 0.0;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const double dx = approx[i].fx - exact[i].fx;
    const double dy = approx[i].fy - exact[i].fy;
    const double dz = approx[i].fz - exact[i].fz;
    rmsErr += dx * dx + dy * dy + dz * dz;
    rmsMag += exact[i].fx * exact[i].fx + exact[i].fy * exact[i].fy +
              exact[i].fz * exact[i].fz;
  }
  EXPECT_LT(std::sqrt(rmsErr / rmsMag), 0.02);  // ~2 % at theta=0.4
}

TEST(BarnesHut, ThetaZeroIsExact) {
  Rng rng(9);
  std::vector<BarnesHutTree::Body> bodies(60);
  for (auto& b : bodies) {
    b.x = rng.uniform(-1.0, 1.0);
    b.y = rng.uniform(-1.0, 1.0);
    b.z = rng.uniform(-1.0, 1.0);
    b.charge = rng.uniform(-1.0, 1.0);  // mixed signs
  }
  const BarnesHutTree tree(bodies);
  const auto walk = tree.allForces(0.0);
  const auto exact = tree.directForces();
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_NEAR(walk[i].fx, exact[i].fx, 1e-9);
    EXPECT_NEAR(walk[i].fy, exact[i].fy, 1e-9);
    EXPECT_NEAR(walk[i].fz, exact[i].fz, 1e-9);
  }
}

TEST(BarnesHut, TreeSizeIsLinearish) {
  Rng rng(3);
  std::vector<BarnesHutTree::Body> bodies(500);
  for (auto& b : bodies) {
    b.x = rng.uniform(0.0, 1.0);
    b.y = rng.uniform(0.0, 1.0);
    b.z = rng.uniform(0.0, 1.0);
    b.charge = 1.0;
  }
  const BarnesHutTree tree(bodies);
  EXPECT_GE(tree.nodeCount(), 500u);
  EXPECT_LE(tree.nodeCount(), 5000u);
}

TEST(BarnesHut, CoincidentBodiesDoNotRecurseForever) {
  std::vector<BarnesHutTree::Body> bodies(4, {0.5, 0.5, 0.5, 1.0});
  const BarnesHutTree tree(bodies);  // depth cap must terminate the build
  EXPECT_GE(tree.nodeCount(), 1u);
}

// ---- Euler hydro -------------------------------------------------------------

TEST(EulerSolver, SodShockTubeConservesMass) {
  EulerSolver2D solver(128, 8);
  solver.initSodShockTube();
  const double mass0 = solver.totalMass();
  const double energy0 = solver.totalEnergy();
  for (int i = 0; i < 50; ++i) solver.step();
  // Reflecting/periodic boundaries: conserved to round-off.
  EXPECT_NEAR(solver.totalMass(), mass0, 1e-10 * mass0);
  EXPECT_NEAR(solver.totalEnergy(), energy0, 1e-10 * energy0);
}

TEST(EulerSolver, DensityStaysPositiveAndBounded) {
  EulerSolver2D solver(96, 8);
  solver.initSodShockTube();
  for (int i = 0; i < 80; ++i) solver.step();
  for (std::size_t j = 0; j < solver.ny(); ++j) {
    for (std::size_t i = 0; i < solver.nx(); ++i) {
      const auto& s = solver.at(i, j);
      EXPECT_GT(s.rho, 0.0);
      EXPECT_LE(s.rho, 1.0 + 1e-9);  // between the two initial states
      EXPECT_GE(s.rho, 0.125 - 1e-9);
    }
  }
}

TEST(EulerSolver, ShockMovesRight) {
  EulerSolver2D solver(256, 4);
  solver.initSodShockTube();
  while (solver.time() < 0.15) solver.step();
  // The contact/shock system moves into the low-density right half: density
  // at 60 % of the tube must have risen above its initial 0.125.
  EXPECT_GT(solver.at(3 * solver.nx() / 5, 2).rho, 0.15);
  // Far right is still undisturbed.
  EXPECT_NEAR(solver.at(solver.nx() - 2, 2).rho, 0.125, 1e-6);
}

TEST(EulerSolver, TimeAdvancesByCflSteps) {
  EulerSolver2D solver(64, 4);
  solver.initSodShockTube();
  const double dt = solver.step(0.3);
  EXPECT_GT(dt, 0.0);
  EXPECT_NEAR(solver.time(), dt, 1e-15);
}

// ---- LJ MD --------------------------------------------------------------------

TEST(LennardJones, MomentumConserved) {
  LennardJonesMd::Params params;
  params.particles = 216;
  LennardJonesMd md(params);
  EXPECT_LT(md.momentumNorm(), 1e-9);
  for (int i = 0; i < 50; ++i) md.step();
  EXPECT_LT(md.momentumNorm(), 1e-6);
}

TEST(LennardJones, EnergyDriftBounded) {
  LennardJonesMd::Params params;
  params.particles = 216;
  params.dt = 0.002;
  LennardJonesMd md(params);
  const double e0 = md.totalEnergy();
  for (int i = 0; i < 200; ++i) md.step();
  const double e1 = md.totalEnergy();
  EXPECT_LT(std::abs(e1 - e0), 0.02 * std::abs(e0) + 1.0);
}

TEST(LennardJones, HeatsUpFromLattice) {
  // The lattice is not the potential minimum under kinetic agitation;
  // the system must move (positions change) but stay in the box.
  LennardJonesMd::Params params;
  params.particles = 125;
  LennardJonesMd md(params);
  for (int i = 0; i < 20; ++i) md.step();
  EXPECT_GT(md.kineticEnergy(), 0.0);
}

// ---- Acoustic wave -------------------------------------------------------------

TEST(AcousticWave, WavefrontExpandsAtMediumSpeed) {
  AcousticWave2D::Params params;
  params.n = 192;
  params.waveSpeed = 1.0;
  AcousticWave2D wave(params);
  for (int i = 0; i < 150; ++i) wave.step();
  const double radius = wave.wavefrontRadius();
  const double expected = params.waveSpeed * wave.time();
  EXPECT_GT(radius, 0.5 * expected);
  EXPECT_LT(radius, 1.5 * expected + 5.0);
}

TEST(AcousticWave, EnergyBoundedAfterSourceCutoff) {
  AcousticWave2D::Params params;
  params.n = 128;
  AcousticWave2D wave(params);
  for (int i = 0; i < 70; ++i) wave.step();  // source active + tail
  const double eAfterSource = wave.energy();
  for (int i = 0; i < 60; ++i) wave.step();
  EXPECT_LT(wave.energy(), 1.3 * eAfterSource + 1e-12);
  EXPECT_GT(wave.energy(), 0.0);
}

// ---- Skeleton feasibility helpers ----------------------------------------------

TEST(Skeletons, PepcReferenceNeedsAtLeast24Nodes) {
  const auto spec = cluster::ClusterSpec::tibidabo();
  const PepcBenchmark::Params params;
  const int minNodes = PepcBenchmark::minimumNodes(spec, params.particles);
  EXPECT_GE(minNodes, 20);
  EXPECT_LE(minNodes, 28);  // the paper says 24
}

TEST(Skeletons, MdReferenceFitsTwoNodes) {
  const auto spec = cluster::ClusterSpec::tibidabo();
  const MdBenchmark::Params params;
  const int minNodes = MdBenchmark::minimumNodes(spec, params.atoms);
  EXPECT_LE(minNodes, 2);
}

TEST(Skeletons, SpecfemReferenceFitsOneNode) {
  const auto spec = cluster::ClusterSpec::tibidabo();
  const SpecfemBenchmark::Params params;
  EXPECT_LE(SpecfemBenchmark::minimumNodes(spec, params.elements), 1);
}

}  // namespace
}  // namespace tibsim::apps
